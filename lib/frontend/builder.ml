open Msc_ir

let def_tensor_1d ?(time_window = 1) ?(halo = 1) name dtype n =
  Tensor.sp ~time_window ~halo:[| halo |] name dtype [| n |]

let def_tensor_2d ?(time_window = 1) ?(halo = 1) name dtype m n =
  Tensor.sp ~time_window ~halo:[| halo; halo |] name dtype [| m; n |]

let def_tensor_3d ?(time_window = 1) ?(halo = 1) name dtype m n p =
  Tensor.sp ~time_window ~halo:[| halo; halo; halo |] name dtype [| m; n; p |]

let def_tensor_3d_timewin name ~time_window ~halo dtype m n p =
  def_tensor_3d ~time_window ~halo name dtype m n p

let default_index_vars = function
  | 1 -> [ "i" ]
  | 2 -> [ "j"; "i" ]
  | 3 -> [ "k"; "j"; "i" ]
  | n -> List.init n (Printf.sprintf "i%d")

let kernel ?bindings ~name ~grid expr =
  Kernel.make ?bindings ~name ~input:grid
    ~index_vars:(default_index_vars (Tensor.ndim grid))
    expr

let weights ~center n =
  assert (n >= 1 && center > 0.0 && center <= 1.0);
  if n = 1 then [| 1.0 |]
  else begin
    let rest = (1.0 -. center) /. float_of_int (n - 1) in
    Array.init n (fun k -> if k = 0 then center else rest)
  end

let shaped_kernel ?(center_weight = 0.5) ~name ~shape ~radius grid =
  let offsets = Shapes.offsets shape ~ndim:(Tensor.ndim grid) ~radius in
  let n = List.length offsets in
  let ws = weights ~center:center_weight n in
  let bindings = List.init n (fun k -> (Printf.sprintf "c%d" k, ws.(k))) in
  let terms =
    List.mapi
      (fun k off -> Expr.(p (Printf.sprintf "c%d" k) * read grid.Tensor.name off))
      offsets
  in
  let expr =
    match terms with
    | [] -> assert false
    | first :: rest -> List.fold_left Expr.( + ) first rest
  in
  kernel ~bindings ~name ~grid expr

let star_kernel ?center_weight ~name ~radius grid =
  shaped_kernel ?center_weight ~name ~shape:Shapes.Star ~radius grid

let box_kernel ?center_weight ~name ~radius grid =
  shaped_kernel ?center_weight ~name ~shape:Shapes.Box ~radius grid

let coefficient_grid ~grid name =
  Tensor.sp ~halo:(Array.copy grid.Tensor.halo) name grid.Tensor.dtype
    (Array.copy grid.Tensor.shape)

let var_coeff_kernel ~name ~coeff ~shape ~radius grid =
  let offsets = Shapes.offsets shape ~ndim:(Tensor.ndim grid) ~radius in
  let n = List.length offsets in
  let w = 1.0 /. float_of_int n in
  let terms =
    List.map
      (fun off ->
        Expr.(p "w" * read coeff.Tensor.name off * read grid.Tensor.name off))
      offsets
  in
  let expr =
    match terms with
    | [] -> assert false
    | first :: rest -> List.fold_left Expr.( + ) first rest
  in
  Kernel.make
    ~bindings:[ ("w", w) ]
    ~aux:[ coeff ] ~name ~input:grid
    ~index_vars:(default_index_vars (Tensor.ndim grid))
    expr

(* The matrix-free (negative) Laplacian: [2*nd] at the centre, [-1] on each
   of the [2*nd] face neighbours — unit-spacing second differences, the SPD
   operator behind the Poisson solvers. Term order is fixed (centre first,
   then low/high per dimension), so every backend folds the same FP
   sequence. *)
let laplacian_diagonal grid = 2.0 *. float_of_int (Tensor.ndim grid)

let laplacian_kernel ?(name = "A_laplace") grid =
  let nd = Tensor.ndim grid in
  let zeros = Array.make nd 0 in
  let centre = Expr.(p "d" * read grid.Tensor.name zeros) in
  let neighbours =
    List.concat
      (List.init nd (fun d ->
           List.map
             (fun s ->
               let off = Array.make nd 0 in
               off.(d) <- s;
               Expr.(p "m" * read grid.Tensor.name off))
             [ -1; 1 ]))
  in
  let expr = List.fold_left Expr.( + ) centre neighbours in
  kernel
    ~bindings:[ ("d", laplacian_diagonal grid); ("m", -1.0) ]
    ~name ~grid expr

(* A radius-0 kernel that reads one static coefficient grid at the centre —
   how a solver's right-hand side enters a stencil expression ([b] in
   [x + (omega/d) * (b - A x)]). *)
let aux_point_kernel ?(name = "rhs") ~aux grid =
  let zeros = Array.make (Tensor.ndim grid) 0 in
  Kernel.make ~aux:[ aux ] ~name ~input:grid
    ~index_vars:(default_index_vars (Tensor.ndim grid))
    Expr.(read aux.Tensor.name zeros)

let ( @> ) k dt = Stencil.Apply (k, dt)
let state dt = Stencil.State dt
let ( +: ) a b = Stencil.Sum (a, b)
let ( -: ) a b = Stencil.Diff (a, b)
let ( *: ) c e = Stencil.Scale (c, e)

let stencil ~name ~grid expr =
  let st = Stencil.make ~name ~grid expr in
  Stencil.validate_halo st;
  st

let single_step ~name k =
  stencil ~name ~grid:k.Kernel.input (k @> 1)

let two_step ~name k =
  stencil ~name ~grid:k.Kernel.input ((0.5 *: (k @> 1)) +: (0.5 *: (k @> 2)))
