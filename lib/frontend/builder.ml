open Msc_ir

let def_tensor_1d ?(time_window = 1) ?(halo = 1) name dtype n =
  Tensor.sp ~time_window ~halo:[| halo |] name dtype [| n |]

let def_tensor_2d ?(time_window = 1) ?(halo = 1) name dtype m n =
  Tensor.sp ~time_window ~halo:[| halo; halo |] name dtype [| m; n |]

let def_tensor_3d ?(time_window = 1) ?(halo = 1) name dtype m n p =
  Tensor.sp ~time_window ~halo:[| halo; halo; halo |] name dtype [| m; n; p |]

let def_tensor_3d_timewin name ~time_window ~halo dtype m n p =
  def_tensor_3d ~time_window ~halo name dtype m n p

let default_index_vars = function
  | 1 -> [ "i" ]
  | 2 -> [ "j"; "i" ]
  | 3 -> [ "k"; "j"; "i" ]
  | n -> List.init n (Printf.sprintf "i%d")

let kernel ?bindings ~name ~grid expr =
  Kernel.make ?bindings ~name ~input:grid
    ~index_vars:(default_index_vars (Tensor.ndim grid))
    expr

let weights ~center n =
  assert (n >= 1 && center > 0.0 && center <= 1.0);
  if n = 1 then [| 1.0 |]
  else begin
    let rest = (1.0 -. center) /. float_of_int (n - 1) in
    Array.init n (fun k -> if k = 0 then center else rest)
  end

let shaped_kernel ?(center_weight = 0.5) ~name ~shape ~radius grid =
  let offsets = Shapes.offsets shape ~ndim:(Tensor.ndim grid) ~radius in
  let n = List.length offsets in
  let ws = weights ~center:center_weight n in
  let bindings = List.init n (fun k -> (Printf.sprintf "c%d" k, ws.(k))) in
  let terms =
    List.mapi
      (fun k off -> Expr.(p (Printf.sprintf "c%d" k) * read grid.Tensor.name off))
      offsets
  in
  let expr =
    match terms with
    | [] -> assert false
    | first :: rest -> List.fold_left Expr.( + ) first rest
  in
  kernel ~bindings ~name ~grid expr

let star_kernel ?center_weight ~name ~radius grid =
  shaped_kernel ?center_weight ~name ~shape:Shapes.Star ~radius grid

let box_kernel ?center_weight ~name ~radius grid =
  shaped_kernel ?center_weight ~name ~shape:Shapes.Box ~radius grid

let coefficient_grid ~grid name =
  Tensor.sp ~halo:(Array.copy grid.Tensor.halo) name grid.Tensor.dtype
    (Array.copy grid.Tensor.shape)

let var_coeff_kernel ~name ~coeff ~shape ~radius grid =
  let offsets = Shapes.offsets shape ~ndim:(Tensor.ndim grid) ~radius in
  let n = List.length offsets in
  let w = 1.0 /. float_of_int n in
  let terms =
    List.map
      (fun off ->
        Expr.(p "w" * read coeff.Tensor.name off * read grid.Tensor.name off))
      offsets
  in
  let expr =
    match terms with
    | [] -> assert false
    | first :: rest -> List.fold_left Expr.( + ) first rest
  in
  Kernel.make
    ~bindings:[ ("w", w) ]
    ~aux:[ coeff ] ~name ~input:grid
    ~index_vars:(default_index_vars (Tensor.ndim grid))
    expr

let ( @> ) k dt = Stencil.Apply (k, dt)
let state dt = Stencil.State dt
let ( +: ) a b = Stencil.Sum (a, b)
let ( -: ) a b = Stencil.Diff (a, b)
let ( *: ) c e = Stencil.Scale (c, e)

let stencil ~name ~grid expr =
  let st = Stencil.make ~name ~grid expr in
  Stencil.validate_halo st;
  st

let single_step ~name k =
  stencil ~name ~grid:k.Kernel.input (k @> 1)

let two_step ~name k =
  stencil ~name ~grid:k.Kernel.input ((0.5 *: (k @> 1)) +: (0.5 *: (k @> 2)))
