(** Graph-rewriting passes over the pipeline IR, with a fixpoint driver.

    Every pass must preserve the graph's observable semantics {e
    bit-exactly}: executing the rewritten graph stage-at-a-time (in tree
    mode, the forced evaluation mode for graph stages — see
    {!Msc_exec.Interp.compile}) produces the same bits as the original.
    The fusion pass keeps this contract by substituting the producer's
    expression tree verbatim (parameters bound to constants, offsets
    shifted, the term scale folded in as the same multiply the scaled
    writeback would perform) and simplifying only with
    {!Msc_ir.Simplify}, which never reassociates. *)

type t = { name : string; run : Graph.t -> Graph.t }

val dead_stage_elim : t
(** Drop stages not transitively reachable from the output. *)

val fuse : ?max_radius:int -> unit -> t
(** Producer→consumer fusion: fold a stage with exactly one consumer into
    that consumer as a compound kernel. One fusion per invocation (the
    driver iterates to a fixpoint). A producer is eligible when its
    stencil is a single term at [dt = 1] (a kernel application or a state
    copy, optionally scaled) whose expression uses no loop variables; the
    fusion is abandoned when the consumer reads the producer from a
    [dt > 1] term that would re-stamp the substituted reads, when
    re-pointing the consumer's input would change what its [State] terms
    mean, or when the composed per-dimension radius exceeds [max_radius]
    (default 8 — the SPM working-set clamp). *)

val merge_halos : ?max_width:int -> unit -> t
(** Mark the graph for shared-halo execution ({!Graph.t.merged}): the
    distributed runtime exchanges the source once per step with a
    {!Graph.required_halo}-deep halo instead of once per stage. Applied
    only when every dimension's required halo is at most [max_width]
    (default 8); idempotent. *)

val default_pipeline : t list
(** [dead_stage_elim; fuse (); merge_halos ()]. *)

val apply : ?trace:Msc_trace.t -> ?max_rounds:int -> t list -> Graph.t -> Graph.t
(** Run the pass list repeatedly until a whole round leaves the graph
    unchanged ({!Graph.equal}) or [max_rounds] (default 50) rounds have
    run. Each pass invocation records a [pass.<name>] trace span and a
    [pass.changed.<name>] counter when it rewrote the graph. *)
