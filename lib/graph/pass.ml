open Msc_ir

type t = { name : string; run : Graph.t -> Graph.t }

(* ------------------------------------------------------------------ *)
(* Dead-stage elimination: keep only stages transitively reachable     *)
(* from the output.                                                    *)

let dead_stage_elim =
  let run (g : Graph.t) =
    let live = Hashtbl.create 16 in
    let rec mark name =
      if not (Hashtbl.mem live name) then begin
        Hashtbl.add live name ();
        List.iter mark (Graph.deps g (Graph.stage g name))
      end
    in
    mark g.Graph.output;
    let stages = List.filter (fun s -> Hashtbl.mem live s.Graph.name) g.Graph.stages in
    if List.length stages = List.length g.Graph.stages then g
    else
      Graph.make ~merged:g.Graph.merged ~source:g.Graph.source
        ~output:g.Graph.output stages
  in
  { name = "dead-stage-elim"; run }

(* ------------------------------------------------------------------ *)
(* Producer -> consumer fusion.                                        *)

let rec contains_var = function
  | Expr.Var _ -> true
  | Expr.Fconst _ | Expr.Iconst _ | Expr.Param _ | Expr.Access _ -> false
  | Expr.Unop (_, e) -> contains_var e
  | Expr.Binop (_, a, b) -> contains_var a || contains_var b
  | Expr.Call (_, args) -> List.exists contains_var args

(* The value producer [p] writes at offset [o] from the current point,
   as an expression over p's *own* inputs: parameters substituted from
   the bindings (they would otherwise collide with the consumer's), every
   access shifted by [o], the term scale folded in as an explicit
   multiply only when it is not 1 (an unscaled writeback performs no
   multiplication, and the naive reference must see the same bits). *)
let producer_value ~scale ~src ~input_name offsets =
  let shift (a : Expr.access) =
    { a with Expr.offsets = Array.mapi (fun d o -> o + offsets.(d)) a.Expr.offsets }
  in
  let body =
    match src with
    | `State ->
        Expr.Access { Expr.tensor = input_name; offsets = Array.copy offsets }
    | `Kernel (k : Kernel.t) ->
        Expr.map_expr
          (fun e ->
            match e with
            | Expr.Param nm -> (
                match List.assoc_opt nm k.Kernel.bindings with
                | Some v -> Some (Expr.Fconst v)
                | None -> None)
            | Expr.Access a -> Some (Expr.Access (shift a))
            | _ -> None)
          k.Kernel.expr
  in
  if scale = 1.0 then body else Expr.Binop (Expr.Mul, Expr.Fconst scale, body)

(* Try to fold producer stage [p] into its single consumer. Returns the
   rewritten graph, or None when any eligibility rule fails. *)
let try_fuse ~max_radius (g : Graph.t) (p : Graph.stage) =
  if String.equal p.Graph.name g.Graph.output then None
  else
    match Graph.consumers g p.Graph.name with
    | [] | _ :: _ :: _ -> None
    | [ c ] -> (
        match Graph.terms p.Graph.stencil with
        | [ { Graph.scale; src; dt = 1 } ] -> (
            let body_ok =
              match src with
              | `State -> true
              | `Kernel k -> not (contains_var k.Kernel.expr)
            in
            if not body_ok then None
            else
              let i_p = p.Graph.stencil.Stencil.grid in
              let c_terms = Graph.terms c.Graph.stencil in
              let reading_as_input =
                String.equal c.Graph.stencil.Stencil.grid.Tensor.name
                  p.Graph.name
              in
              (* Re-pointing c's input at p's input would silently change
                 what c's State terms mean. *)
              let state_conflict =
                reading_as_input
                && List.exists (fun t -> t.Graph.src = `State) c_terms
              in
              (* After fusion a kernel term of c that read p now reads
                 p's input; if that term's stencil input *is* p's input,
                 its dt stamps those reads — p computed from dt = 1, so
                 any other dt changes meaning. *)
              let new_grid =
                if reading_as_input then i_p else c.Graph.stencil.Stencil.grid
              in
              let dt_conflict =
                String.equal i_p.Tensor.name new_grid.Tensor.name
                && List.exists
                     (fun t ->
                       match t.Graph.src with
                       | `Kernel k ->
                           t.Graph.dt <> 1
                           && List.exists
                                (fun (a : Expr.access) ->
                                  String.equal a.Expr.tensor p.Graph.name)
                                (Expr.accesses k.Kernel.expr)
                       | `State -> false)
                     c_terms
              in
              if state_conflict || dt_conflict then None
              else begin
                (* Tensor environment for rebinding aux lists. *)
                let env = ref [] in
                let bind (x : Tensor.t) =
                  if
                    not
                      (List.exists
                         (fun (y : Tensor.t) ->
                           String.equal y.Tensor.name x.Tensor.name)
                         !env)
                  then env := x :: !env
                in
                bind g.Graph.source;
                bind i_p;
                (match src with
                | `Kernel k ->
                    bind k.Kernel.input;
                    List.iter bind k.Kernel.aux
                | `State -> ());
                List.iter
                  (fun (k : Kernel.t) ->
                    bind k.Kernel.input;
                    List.iter bind k.Kernel.aux)
                  (Stencil.kernels c.Graph.stencil);
                let lookup n =
                  match
                    List.find_opt
                      (fun (x : Tensor.t) -> String.equal x.Tensor.name n)
                      !env
                  with
                  | Some x -> x
                  | None ->
                      invalid_arg
                        (Printf.sprintf "Pass.fuse: unbound tensor %S" n)
                in
                (* Rewrite each kernel expression of c. *)
                let subst expr =
                  Expr.map_expr
                    (fun e ->
                      match e with
                      | Expr.Access a
                        when String.equal a.Expr.tensor p.Graph.name ->
                          Some
                            (producer_value ~scale ~src
                               ~input_name:i_p.Tensor.name a.Expr.offsets)
                      | _ -> None)
                    expr
                in
                let new_exprs =
                  List.map
                    (fun (k : Kernel.t) ->
                      let reads_p =
                        List.exists
                          (fun (a : Expr.access) ->
                            String.equal a.Expr.tensor p.Graph.name)
                          (Expr.accesses k.Kernel.expr)
                      in
                      if reads_p then (k, Simplify.expr (subst k.Kernel.expr), true)
                      else (k, k.Kernel.expr, false))
                    (Stencil.kernels c.Graph.stencil)
                in
                (* Composed stage radius; bail past the SPM clamp. *)
                let nd = Tensor.ndim g.Graph.source in
                let h = Array.make nd 0 in
                List.iter
                  (fun (_, expr, _) ->
                    List.iter
                      (fun (a : Expr.access) ->
                        Array.iteri
                          (fun d o -> h.(d) <- max h.(d) (abs o))
                          a.Expr.offsets)
                      (Expr.distinct_accesses expr))
                  new_exprs;
                if Array.exists (fun r -> r > max_radius) h then None
                else begin
                  let regrid (x : Tensor.t) =
                    { x with Tensor.halo = Array.copy h }
                  in
                  let new_grid_t = regrid new_grid in
                  let rebuilt =
                    List.map
                      (fun ((k : Kernel.t), expr, fused) ->
                        let aux_names =
                          List.filter
                            (fun n ->
                              not (String.equal n new_grid_t.Tensor.name))
                            (List.sort_uniq String.compare
                               (List.map
                                  (fun (a : Expr.access) -> a.Expr.tensor)
                                  (Expr.distinct_accesses expr)))
                        in
                        let aux =
                          List.map (fun n -> regrid (lookup n)) aux_names
                        in
                        let name =
                          if fused then k.Kernel.name ^ "_o_" ^ p.Graph.name
                          else k.Kernel.name
                        in
                        ( k.Kernel.name,
                          Kernel.make ~bindings:k.Kernel.bindings ~aux ~name
                            ~input:new_grid_t ~index_vars:k.Kernel.index_vars
                            expr ))
                      new_exprs
                  in
                  let rec go = function
                    | Stencil.Apply (k, dt) ->
                        Stencil.Apply (List.assoc k.Kernel.name rebuilt, dt)
                    | Stencil.State _ as e -> e
                    | Stencil.Scale (sc, e) -> Stencil.Scale (sc, go e)
                    | Stencil.Sum (a, b) -> Stencil.Sum (go a, go b)
                    | Stencil.Diff (a, b) -> Stencil.Diff (go a, go b)
                  in
                  let stencil =
                    Stencil.make ~name:c.Graph.stencil.Stencil.name
                      ~grid:new_grid_t
                      (go c.Graph.stencil.Stencil.expr)
                  in
                  let stages =
                    List.filter_map
                      (fun s ->
                        if String.equal s.Graph.name p.Graph.name then None
                        else if String.equal s.Graph.name c.Graph.name then
                          Some { s with Graph.stencil }
                        else Some s)
                      g.Graph.stages
                  in
                  Some
                    (Graph.make ~merged:g.Graph.merged ~source:g.Graph.source
                       ~output:g.Graph.output stages)
                end
              end)
        | _ -> None)

let fuse ?(max_radius = 8) () =
  let run (g : Graph.t) =
    let rec first = function
      | [] -> g
      | p :: rest -> (
          match try_fuse ~max_radius g p with
          | Some g' -> g'
          | None -> first rest)
    in
    first g.Graph.stages
  in
  { name = "fuse"; run }

(* ------------------------------------------------------------------ *)
(* Shared-halo merging: mark the graph for one deep exchange per step. *)

let merge_halos ?(max_width = 8) () =
  let run (g : Graph.t) =
    if g.Graph.merged then g
    else if Array.for_all (fun w -> w <= max_width) (Graph.required_halo g)
    then Graph.with_merged g true
    else g
  in
  { name = "merge-halos"; run }

let default_pipeline = [ dead_stage_elim; fuse (); merge_halos () ]

(* ------------------------------------------------------------------ *)
(* Fixpoint driver.                                                    *)

let apply ?(trace = Msc_trace.disabled) ?(max_rounds = 50) passes g =
  let step g =
    List.fold_left
      (fun acc p ->
        let t0 = Msc_trace.begin_span trace in
        let out = p.run acc in
        Msc_trace.end_span trace ("pass." ^ p.name) t0;
        if not (Graph.equal out acc) then
          Msc_trace.add trace ("pass.changed." ^ p.name) 1.0;
        out)
      g passes
  in
  let rec loop round g =
    if round >= max_rounds then g
    else
      let g' = step g in
      if Graph.equal g' g then g else loop (round + 1) g'
  in
  loop 0 g
