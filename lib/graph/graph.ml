open Msc_ir

type stage = { name : string; stencil : Stencil.t }

type t = {
  source : Tensor.t;
  stages : stage list;
  output : string;
  merged : bool;
}

(* ------------------------------------------------------------------ *)
(* Stencil expression flattening (mirrors Runtime's term view).        *)

type term = { scale : float; src : [ `Kernel of Kernel.t | `State ]; dt : int }

let terms st =
  let rec go scale = function
    | Stencil.Apply (k, dt) -> [ { scale; src = `Kernel k; dt } ]
    | Stencil.State dt -> [ { scale; src = `State; dt } ]
    | Stencil.Scale (c, e) -> go (scale *. c) e
    | Stencil.Sum (a, b) -> go scale a @ go scale b
    | Stencil.Diff (a, b) -> go scale a @ go (-.scale) b
  in
  go 1.0 st.Stencil.expr

(* ------------------------------------------------------------------ *)
(* Reads and dependency edges.                                         *)

let stage_names t = List.map (fun s -> s.name) t.stages
let is_stage t name = List.exists (fun s -> String.equal s.name name) t.stages

let stage t name =
  match List.find_opt (fun s -> String.equal s.name name) t.stages with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Graph.stage: no stage %S" name)

(* Distinct tensor names a stage reads: the stage input (read by [State]
   terms and by kernels through their input tensor) plus every tensor the
   kernel expressions access. *)
let reads s =
  let st = s.stencil in
  let acc = ref [] in
  let add n = if not (List.exists (String.equal n) !acc) then acc := n :: !acc in
  let has_state = List.exists (fun t -> t.src = `State) (terms st) in
  if has_state then add st.Stencil.grid.Tensor.name;
  List.iter
    (fun (k : Kernel.t) ->
      add k.Kernel.input.Tensor.name;
      List.iter (fun (a : Expr.access) -> add a.Expr.tensor)
        (Expr.distinct_accesses k.Kernel.expr))
    (Stencil.kernels st);
  List.rev !acc

let deps t s = List.filter (is_stage t) (reads s)

let consumers t name =
  List.filter (fun s -> List.exists (String.equal name) (reads s)) t.stages

let reads_source t s = List.exists (String.equal t.source.Tensor.name) (reads s)

(* Per-dimension max |offset| with which [reader] accesses tensor [name].
   [State] terms read at offset zero, which the zero init already covers. *)
let edge_radius ~ndim reader name =
  let r = Array.make ndim 0 in
  List.iter
    (fun (k : Kernel.t) ->
      List.iter
        (fun (a : Expr.access) ->
          if String.equal a.Expr.tensor name then
            Array.iteri (fun d o -> r.(d) <- max r.(d) (abs o)) a.Expr.offsets)
        (Expr.distinct_accesses k.Kernel.expr))
    (Stencil.kernels reader.stencil);
  r

(* ------------------------------------------------------------------ *)
(* Validation + construction.                                          *)

let topo_sort ~names stages =
  let stage_deps s =
    List.filter (fun n -> List.exists (String.equal n) names) (reads s)
  in
  let rec loop sorted remaining =
    match remaining with
    | [] -> List.rev sorted
    | _ -> (
        let emitted n =
          List.exists (fun s -> String.equal s.name n) sorted
        in
        let ready s = List.for_all emitted (stage_deps s) in
        match List.partition ready remaining with
        | [], stuck ->
            invalid_arg
              (Printf.sprintf "Graph.make: dependency cycle through stages %s"
                 (String.concat ", " (List.map (fun s -> s.name) stuck)))
        | ready, rest -> loop (List.rev_append ready sorted) rest)
  in
  loop [] stages

let make ?(merged = false) ~source ~output stages =
  if stages = [] then invalid_arg "Graph.make: a graph needs at least one stage";
  let names = List.map (fun s -> s.name) stages in
  let dup =
    List.find_opt
      (fun n -> List.length (List.filter (String.equal n) names) > 1)
      names
  in
  (match dup with
  | Some n -> invalid_arg (Printf.sprintf "Graph.make: duplicate stage %S" n)
  | None -> ());
  if List.exists (String.equal source.Tensor.name) names then
    invalid_arg
      (Printf.sprintf "Graph.make: stage %S shadows the source tensor"
         source.Tensor.name);
  if not (List.exists (String.equal output) names) then
    invalid_arg (Printf.sprintf "Graph.make: output stage %S not defined" output);
  List.iter
    (fun s ->
      let g = s.stencil.Stencil.grid in
      if g.Tensor.shape <> source.Tensor.shape then
        invalid_arg
          (Printf.sprintf
             "Graph.make: stage %S input shape differs from the source" s.name);
      let from_stage = List.exists (String.equal g.Tensor.name) names in
      if
        (not from_stage)
        && not (String.equal g.Tensor.name source.Tensor.name)
      then
        invalid_arg
          (Printf.sprintf
             "Graph.make: stage %S reads unknown tensor %S as input" s.name
             g.Tensor.name);
      if from_stage && Stencil.time_window s.stencil > 1 then
        invalid_arg
          (Printf.sprintf
             "Graph.make: stage %S reads stage %S at dt > 1; only the source \
              carries a time window"
             s.name g.Tensor.name);
      (* Kernel aux tensors must be either coefficient grids, earlier
         stage outputs, or the source; there is nothing else to bind. *)
      ())
    stages;
  (* Every intermediate buffer holds only the current step, so a stage
     consumed by others cannot also be the stepped output. *)
  let output_consumers =
    List.filter
      (fun s ->
        (not (String.equal s.name output))
        && List.exists (String.equal output) (reads s))
      stages
  in
  (match output_consumers with
  | c :: _ ->
      invalid_arg
        (Printf.sprintf
           "Graph.make: output stage %S is read by stage %S; the output must \
            be a sink"
           output c.name)
  | [] -> ());
  let stages = topo_sort ~names stages in
  { source; stages; output; merged }

let with_merged t merged = { t with merged }
let single st = make ~source:st.Stencil.grid ~output:st.Stencil.name
    [ { name = st.Stencil.name; stencil = st } ]

let output_stage t = stage t t.output

(* ------------------------------------------------------------------ *)
(* Halo / extension analysis.                                          *)

(* Ghost-zone extension per stage: how far outside the interior a stage
   must be computed so every consumer's reads (which themselves may run
   extended) are covered. Output runs interior-only. *)
let extensions t =
  let nd = Tensor.ndim t.source in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let e = Array.make nd 0 in
      if not (String.equal s.name t.output) then
        List.iter
          (fun c ->
            let ec = Hashtbl.find tbl c.name in
            let r = edge_radius ~ndim:nd c s.name in
            Array.iteri (fun d _ -> e.(d) <- max e.(d) (ec.(d) + r.(d))) e)
          (consumers t s.name);
      Hashtbl.replace tbl s.name e)
    (List.rev t.stages);
  tbl

let extension t name = Hashtbl.find (extensions t) name

let required_halo t =
  let nd = Tensor.ndim t.source in
  let exts = extensions t in
  let h = Array.make nd 1 in
  List.iter
    (fun s ->
      let e = Hashtbl.find exts s.name in
      let r = Stencil.radius s.stencil in
      Array.iteri (fun d _ -> h.(d) <- max h.(d) (e.(d) + r.(d))) h)
    t.stages;
  h

let time_window t =
  List.fold_left
    (fun acc s ->
      if String.equal s.stencil.Stencil.grid.Tensor.name t.source.Tensor.name
      then max acc (Stencil.time_window s.stencil)
      else acc)
    1 t.stages

let sweeps_per_step t = List.length t.stages

(* Coefficient grids: aux tensors that are neither stages nor the source. *)
let coefficient_tensors t =
  let acc = ref [] in
  let add (x : Tensor.t) =
    if
      (not (is_stage t x.Tensor.name))
      && (not (String.equal x.Tensor.name t.source.Tensor.name))
      && not
           (List.exists
              (fun (y : Tensor.t) -> String.equal y.Tensor.name x.Tensor.name)
              !acc)
    then acc := x :: !acc
  in
  List.iter
    (fun s ->
      List.iter
        (fun (k : Kernel.t) -> List.iter add k.Kernel.aux)
        (Stencil.kernels s.stencil))
    t.stages;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Geometry rewriting: every tensor in the graph gets the same shape
   and (uniform, deep) halo, so one index space covers all stages.      *)

let reshape ?shape ~halo t =
  let shape =
    match shape with Some s -> s | None -> t.source.Tensor.shape
  in
  let rebuild (x : Tensor.t) =
    { x with Tensor.shape = Array.copy shape; Tensor.halo = Array.copy halo }
  in
  let source = rebuild t.source in
  let stages =
    List.map
      (fun s ->
        let st = s.stencil in
        let grid = rebuild st.Stencil.grid in
        let rebuild_kernel (k : Kernel.t) =
          Kernel.make ~bindings:k.Kernel.bindings
            ~aux:(List.map rebuild k.Kernel.aux)
            ~name:k.Kernel.name ~input:grid ~index_vars:k.Kernel.index_vars
            k.Kernel.expr
        in
        let rec go = function
          | Stencil.Apply (k, dt) -> Stencil.Apply (rebuild_kernel k, dt)
          | Stencil.State _ as e -> e
          | Stencil.Scale (c, e) -> Stencil.Scale (c, go e)
          | Stencil.Sum (a, b) -> Stencil.Sum (go a, go b)
          | Stencil.Diff (a, b) -> Stencil.Diff (go a, go b)
        in
        { s with stencil = Stencil.make ~name:st.Stencil.name ~grid (go st.Stencil.expr) })
      t.stages
  in
  { t with source; stages }

(* ------------------------------------------------------------------ *)
(* Structural equality (fixpoint detection for the pass driver).       *)

let tensor_equal (a : Tensor.t) (b : Tensor.t) =
  String.equal a.Tensor.name b.Tensor.name
  && a.Tensor.kind = b.Tensor.kind
  && a.Tensor.dtype = b.Tensor.dtype
  && a.Tensor.shape = b.Tensor.shape
  && a.Tensor.halo = b.Tensor.halo
  && a.Tensor.time_window = b.Tensor.time_window

let kernel_equal (a : Kernel.t) (b : Kernel.t) =
  String.equal a.Kernel.name b.Kernel.name
  && tensor_equal a.Kernel.input b.Kernel.input
  && List.length a.Kernel.aux = List.length b.Kernel.aux
  && List.for_all2 tensor_equal a.Kernel.aux b.Kernel.aux
  && a.Kernel.index_vars = b.Kernel.index_vars
  && a.Kernel.bindings = b.Kernel.bindings
  && Expr.equal a.Kernel.expr b.Kernel.expr

let rec stencil_expr_equal a b =
  match (a, b) with
  | Stencil.Apply (k, dt), Stencil.Apply (k', dt') ->
      dt = dt' && kernel_equal k k'
  | Stencil.State d, Stencil.State d' -> d = d'
  | Stencil.Scale (c, x), Stencil.Scale (c', y) ->
      c = c' && stencil_expr_equal x y
  | Stencil.Sum (x, y), Stencil.Sum (x', y')
  | Stencil.Diff (x, y), Stencil.Diff (x', y') ->
      stencil_expr_equal x x' && stencil_expr_equal y y'
  | _ -> false

let stage_equal a b =
  String.equal a.name b.name
  && String.equal a.stencil.Stencil.name b.stencil.Stencil.name
  && tensor_equal a.stencil.Stencil.grid b.stencil.Stencil.grid
  && stencil_expr_equal a.stencil.Stencil.expr b.stencil.Stencil.expr

let equal a b =
  tensor_equal a.source b.source
  && String.equal a.output b.output
  && a.merged = b.merged
  && List.length a.stages = List.length b.stages
  && List.for_all2 stage_equal a.stages b.stages

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let pp_dims fmt a =
  Format.fprintf fmt "%s"
    (String.concat "x" (Array.to_list (Array.map string_of_int a)))

let to_dot t =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph pipeline {\n";
  pr "  rankdir=LR;\n";
  let h = required_halo t in
  pr "  label=\"stages=%d halo=[%s]%s\";\n" (List.length t.stages)
    (String.concat "," (Array.to_list (Array.map string_of_int h)))
    (if t.merged then " merged" else "");
  pr "  \"%s\" [shape=box,style=bold];\n" t.source.Tensor.name;
  List.iter
    (fun (x : Tensor.t) -> pr "  \"%s\" [shape=box,style=dashed];\n" x.Tensor.name)
    (coefficient_tensors t);
  let exts = extensions t in
  List.iter
    (fun s ->
      let e = Hashtbl.find exts s.name in
      let r = Stencil.radius s.stencil in
      let peri = if String.equal s.name t.output then ",peripheries=2" else "" in
      pr "  \"%s\" [shape=ellipse,label=\"%s\\nr=[%s] e=[%s]\"%s];\n" s.name
        s.name
        (String.concat "," (Array.to_list (Array.map string_of_int r)))
        (String.concat "," (Array.to_list (Array.map string_of_int e)))
        peri)
    t.stages;
  List.iter
    (fun s -> List.iter (fun n -> pr "  \"%s\" -> \"%s\";\n" n s.name) (reads s))
    t.stages;
  pr "}\n";
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "@[<v>graph %s -> %s (%d stage%s%s, halo [%a])@,"
    t.source.Tensor.name t.output (List.length t.stages)
    (if List.length t.stages = 1 then "" else "s")
    (if t.merged then ", merged" else "")
    pp_dims (required_halo t);
  List.iter
    (fun s ->
      Format.fprintf fmt "  %s <- %s@," s.name
        (String.concat ", " (reads s)))
    t.stages;
  Format.fprintf fmt "@]"
