(** Pipeline graph IR: a DAG of named stencil stages over one evolving
    source grid.

    A pipeline computes [output[t]] from [source[t-1..t-W]] through a DAG
    of intermediate stages. Each stage is an {!Msc_ir.Stencil.t} whose
    input grid is either the pipeline {e source} (the stepped tensor, with
    its time window) or the output of another stage {e at the current
    step} ([dt = 1] by construction: intermediates are not stepped, they
    are recomputed every step). Kernel aux tensors may additionally name
    earlier stages, the source, or external coefficient grids.

    The designated [output] stage writes the next source state; every
    other stage materializes into a scratch buffer
    ({!Msc_schedule.Plan.compile_graph} assigns the buffers). Executed
    stage-at-a-time, the graph's semantics are exactly: sweep each stage
    in topological order into its buffer (reading predecessor buffers and
    past source states), then commit the output stage as [source[t]].

    Intermediate buffers carry no boundary condition. Stages consumed by
    later stages are computed on an {e extended} range (interior grown by
    {!extension}) so consumer reads near the interior edge see computed
    values rather than stale memory; the reads those extended points make
    land in the source's BC-filled (or halo-exchanged) ghost region, which
    is why {!required_halo} sums extension and radius. *)

type stage = { name : string; stencil : Msc_ir.Stencil.t }

type t = private {
  source : Msc_ir.Tensor.t;  (** the evolving, stepped grid *)
  stages : stage list;  (** topologically sorted, dependencies first *)
  output : string;  (** stage whose result becomes [source[t]] *)
  merged : bool;
      (** shared-halo execution enabled: distributed runs exchange the
          source once per step at {!required_halo} depth instead of
          exchanging each intermediate (set by
          {!Pass.merge_halos}). *)
}

val make :
  ?merged:bool -> source:Msc_ir.Tensor.t -> output:string -> stage list -> t
(** Validates and topologically sorts the stages.
    @raise Invalid_argument on duplicate or source-shadowing stage names,
    an undefined output, a dependency cycle, a stage input that is neither
    the source nor a stage, a stage-input read at [dt > 1], a shape
    mismatch, or an output stage that other stages read (the output must
    be a sink: intermediates hold only the current step). *)

val single : Msc_ir.Stencil.t -> t
(** The degenerate one-stage pipeline [st] itself. *)

val with_merged : t -> bool -> t
(** Same graph with the [merged] flag replaced (no revalidation). *)

(** {1 Structure} *)

type term = {
  scale : float;
  src : [ `Kernel of Msc_ir.Kernel.t | `State ];
  dt : int;
}

val terms : Msc_ir.Stencil.t -> term list
(** Flatten a stencil expression into scaled terms (distributing
    [Scale]/[Sum]/[Diff]), in evaluation order. *)

val stage_names : t -> string list
val is_stage : t -> string -> bool

val stage : t -> string -> stage
(** @raise Invalid_argument if no stage has that name. *)

val output_stage : t -> stage

val reads : stage -> string list
(** Distinct tensor names the stage reads (input, aux, state), in first-use
    order. *)

val deps : t -> stage -> string list
(** The subset of {!reads} that are stage names. *)

val consumers : t -> string -> stage list
(** Stages that read the named tensor. *)

val reads_source : t -> stage -> bool

(** {1 Analysis} *)

val extensions : t -> (string, int array) Hashtbl.t
(** Per-stage ghost-zone extension: how many cells beyond the interior
    the stage must be computed so every (transitively extended) consumer
    read is covered. The output stage's extension is zero. *)

val extension : t -> string -> int array

val required_halo : t -> int array
(** Per-dimension [max] over stages of extension + stencil radius,
    clamped to at least 1: the uniform deep-halo width the whole pipeline
    runs at (and the width a merged distributed exchange uses). *)

val time_window : t -> int
(** Max [dt] over stages reading the source: past states to retain. *)

val sweeps_per_step : t -> int

val coefficient_tensors : t -> Msc_ir.Tensor.t list
(** Aux tensors that are neither stages nor the source — external
    read-only grids the executor must materialize. *)

val reshape : ?shape:int array -> halo:int array -> t -> t
(** Rebuild every tensor in the graph (source, stage grids, aux) with the
    given interior shape (default: unchanged) and uniform halo, so one
    index space covers all stages. Kernels and stencils are revalidated. *)

(** {1 Comparison and rendering} *)

val equal : t -> t -> bool
(** Structural equality (tensors by name/geometry, expressions
    syntactically) — the pass driver's fixpoint test. *)

val to_dot : t -> string
(** Graphviz rendering: source and coefficient grids as boxes, stages as
    ellipses annotated with radius and extension, the output
    double-ringed. *)

val pp : Format.formatter -> t -> unit
