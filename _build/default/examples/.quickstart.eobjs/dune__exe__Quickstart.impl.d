examples/quickstart.ml: Builder Codegen Dtype Format Grid List Msc Schedule Stencil Sunway Verify
