examples/wave2d.ml: Array Builder Dtype Expr Format Grid List Msc Printf Runtime Stencil Verify
