examples/varcoef_advection.ml: Array Builder Codegen Dtype Format Grid Kernel List Msc Printf Runtime Schedule Shapes Suite Verify
