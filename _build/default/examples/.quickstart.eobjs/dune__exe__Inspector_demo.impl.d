examples/inspector_demo.ml: Array Float Inspector List Msc Printf String Suite
