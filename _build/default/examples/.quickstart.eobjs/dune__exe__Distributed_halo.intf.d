examples/distributed_halo.mli:
