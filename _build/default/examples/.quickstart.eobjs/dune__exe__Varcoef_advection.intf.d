examples/varcoef_advection.mli:
