examples/codegen_tour.ml: Builder Codegen Dtype Float Grid List Msc Pretty Printf Result Runtime Schedule
