examples/autotune_demo.ml: Autotune Format List Msc Printf Suite Tuning_params
