examples/heat3d.ml: Array Builder Domain_pool Dtype Float Format Grid List Matrix Msc Printf Runtime Schedule Sunway
