examples/distributed_halo.ml: Array Builder Decomp Distributed Dtype Grid List Mpi Msc Printf Runtime Scaling
