examples/quickstart.mli:
