examples/inspector_demo.mli:
