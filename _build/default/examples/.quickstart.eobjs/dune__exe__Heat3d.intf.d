examples/heat3d.mli:
