(* A second-order wave equation — the motivating case for multiple time
   dependencies (§1: "second-order wave functions such as mechanical waves").

     u[t] = 2 u[t-1] - u[t-2] + c^2 dt^2 lap(u[t-1])

   The [State] form gives the identity access to past states; the Laplacian
   is an ordinary spatial kernel. A Gaussian pulse in the centre propagates
   outward as a ring; we print coarse snapshots of the wavefield.

   Run with: dune exec examples/wave2d.exe *)

open Msc

let n = 96
let courant2 = 0.2 (* (c dt / dx)^2, inside the CFL limit *)

let () =
  let grid = Builder.def_tensor_2d ~time_window:2 ~halo:1 "U" Dtype.F64 n n in
  let laplacian =
    Builder.kernel ~name:"Lap"
      ~grid
      ~bindings:[ ("c", courant2) ]
      Expr.(
        p "c"
        * (read "U" [| -1; 0 |] + read "U" [| 1; 0 |] + read "U" [| 0; -1 |]
          + read "U" [| 0; 1 |]
          - (f 4.0 * read "U" [| 0; 0 |])))
  in
  let wave =
    Builder.(
      stencil ~name:"wave2d" ~grid
        ((2.0 *: state 1) -: state 2 +: (laplacian @> 1)))
  in
  Format.printf "%a@.@." Stencil.pp wave;

  (* Initial condition: a Gaussian pulse, identical at t-1 and t-2 (zero
     initial velocity). *)
  let init _dt coord =
    let x = float_of_int coord.(0) -. (float_of_int n /. 2.0) in
    let y = float_of_int coord.(1) -. (float_of_int n /. 2.0) in
    exp (-.((x *. x) +. (y *. y)) /. 30.0)
  in
  let rt = Runtime.create ~init wave in

  (* Verify the optimized runtime against the naive reference first. *)
  let report = Verify.check ~init ~steps:10 wave in
  Format.printf "%a@.@." Verify.pp_report report;

  let snapshot () =
    let g = Runtime.current rt in
    (* A coarse 24x48 ASCII rendering of the wavefield. *)
    for row = 0 to 23 do
      for col = 0 to 47 do
        let i = row * n / 24 and j = col * n / 48 in
        let v = Grid.get g [| i; j |] in
        let c =
          if v > 0.25 then '#'
          else if v > 0.05 then '+'
          else if v < -0.25 then '='
          else if v < -0.05 then '-'
          else ' '
        in
        print_char c
      done;
      print_newline ()
    done;
    Printf.printf "(step %d, max |u| = %.3f)\n\n" (Runtime.steps_done rt)
      (Grid.max_abs g)
  in
  snapshot ();
  List.iter
    (fun steps ->
      Runtime.run rt steps;
      snapshot ())
    [ 20; 20; 20 ]
