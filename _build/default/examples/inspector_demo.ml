(* Inspector-executor load balancing (§5.6): the paper notes that WRF and
   POP2 "suffer from serious load imbalance in large-scale execution" and
   plans an inspector phase that analyses the subgrids before the executor
   compiles and runs them.

   Here: a POP2-style ocean model where a band of slabs is 8x more expensive
   than the land background. The inspector profiles the per-slab cost,
   computes the optimal contiguous partition (linear-partitioning DP), and
   the executor geometry assigns ragged slabs to ranks.

   Run with: dune exec examples/inspector_demo.exe *)

open Msc

let slabs = 192
let ranks = 12
let global = [| slabs; 256; 256 |]

let () =
  (* Cost profile: cheap land, an expensive ocean band. *)
  let cost_of_slab i = if i >= 40 && i < 110 then 8.0 else 1.0 in
  let st = Suite.stencil ~dims:global (Suite.find "3d7pt_star") in

  let costs = Array.init slabs cost_of_slab in
  let uniform = Inspector.even_plan ~costs ~parts:ranks in
  let inspected = Inspector.inspect st ~ranks ~cost_of_slab in

  Printf.printf "load profile: land cost 1.0, ocean band [40,110) cost 8.0, %d slabs over %d ranks\n\n"
    slabs ranks;

  let show label (plan : Inspector.plan) =
    Printf.printf "%s  (max/mean imbalance %.2f)\n" label plan.Inspector.imbalance;
    Array.iteri
      (fun r c ->
        let width = plan.Inspector.boundaries.(r + 1) - plan.Inspector.boundaries.(r) in
        Printf.printf "  rank %2d: slabs %3d..%3d (%3d wide)  cost %6.1f  %s\n" r
          plan.Inspector.boundaries.(r)
          (plan.Inspector.boundaries.(r + 1) - 1)
          width c
          (String.make (int_of_float (c /. 4.0)) '#'))
      plan.Inspector.rank_costs;
    print_newline ()
  in
  show "uniform blocks (no inspector):" uniform;
  show "inspector-executor partition:" inspected;

  (* Executor geometry: ragged slabs of the global grid. *)
  print_endline "executor sub-grids (offset, extent along dimension 0):";
  List.iteri
    (fun r (offset, extent) ->
      Printf.printf "  rank %2d: offset %3d extent %3d x %d x %d\n" r offset.(0)
        extent.(0) extent.(1) extent.(2))
    (Inspector.executor_ranks_extents inspected ~global);

  Printf.printf
    "\nspeedup of the balanced executor over uniform blocks: %.2fx (per-step critical path)\n"
    (Array.fold_left Float.max 0.0 uniform.Inspector.rank_costs
    /. Array.fold_left Float.max 0.0 inspected.Inspector.rank_costs)
