(* Unit and property tests for msc_util: PRNG, statistics, regression,
   tables, charts, units, domain pool. *)

open Helpers
module Prng = Msc_util.Prng
module Stats = Msc_util.Stats
module Regress = Msc_util.Regress
module Table = Msc_util.Table
module Chart = Msc_util.Chart
module Units_fmt = Msc_util.Units_fmt
module Domain_pool = Msc_util.Domain_pool

(* --- PRNG --- *)

let prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  check_bool "different streams" false (Prng.next_int64 a = Prng.next_int64 b)

let prng_copy_independent () =
  let a = Prng.create 7 in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b);
  ignore (Prng.next_int64 a);
  (* b is one draw behind a now; their next outputs must differ. *)
  let xa = Prng.next_int64 a and xb = Prng.next_int64 b in
  check_bool "independent after divergence" false (Int64.equal xa xb)

let prng_uniform_range () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let u = Prng.uniform rng in
    check_bool "in [0,1)" true (u >= 0.0 && u < 1.0)
  done

let prng_int_range () =
  let rng = Prng.create 4 in
  for _ = 1 to 1000 do
    let k = Prng.int rng 17 in
    check_bool "in [0,17)" true (k >= 0 && k < 17)
  done

let prng_mean_reasonable () =
  let rng = Prng.create 5 in
  let xs = Array.init 20000 (fun _ -> Prng.uniform rng) in
  check_bool "mean near 0.5" true (Float.abs (Stats.mean xs -. 0.5) < 0.02)

let prng_gaussian_moments () =
  let rng = Prng.create 6 in
  let xs = Array.init 20000 (fun _ -> Prng.gaussian rng) in
  check_bool "mean near 0" true (Float.abs (Stats.mean xs) < 0.05);
  check_bool "stddev near 1" true (Float.abs (Stats.stddev xs -. 1.0) < 0.05)

let prng_shuffle_permutes () =
  let rng = Prng.create 8 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let prng_split_independent () =
  let rng = Prng.create 9 in
  let child = Prng.split rng in
  check_bool "child differs from parent stream" false
    (Prng.next_int64 child = Prng.next_int64 rng)

(* --- Stats --- *)

let stats_mean () = check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let stats_geomean () =
  check_float "geomean of 2,8" 4.0 (Stats.geomean [| 2.0; 8.0 |])

let stats_stddev () =
  check_float "population stddev" 1.0 (Stats.stddev [| 1.0; 3.0; 1.0; 3.0 |])

let stats_minmax () =
  check_float "min" (-3.0) (Stats.minimum [| 2.0; -3.0; 7.0 |]);
  check_float "max" 7.0 (Stats.maximum [| 2.0; -3.0; 7.0 |])

let stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p50" 3.0 (Stats.percentile xs 50.0);
  check_float "p100" 5.0 (Stats.percentile xs 100.0);
  check_float "p25 interpolates" 2.0 (Stats.percentile xs 25.0)

let stats_percentile_does_not_mutate () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.percentile xs 50.0);
  Alcotest.(check (array (float 0.0))) "untouched" [| 3.0; 1.0; 2.0 |] xs

let stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0 |] in
  check_int "n" 3 s.Stats.n;
  check_float "median" 2.0 s.Stats.median

(* --- Regression --- *)

let regress_exact_linear () =
  (* y = 3 + 2 x0 - x1 must be recovered exactly. *)
  let rng = Prng.create 11 in
  let features =
    Array.init 50 (fun _ -> [| Prng.float rng 10.0; Prng.float rng 10.0 |])
  in
  let targets = Array.map (fun f -> 3.0 +. (2.0 *. f.(0)) -. f.(1)) features in
  let m = Regress.fit ~features ~targets in
  check_bool "intercept" true (Float.abs (m.Regress.intercept -. 3.0) < 1e-6);
  check_bool "coef0" true (Float.abs (m.Regress.coefficients.(0) -. 2.0) < 1e-6);
  check_bool "coef1" true (Float.abs (m.Regress.coefficients.(1) +. 1.0) < 1e-6);
  check_bool "r2 = 1" true (m.Regress.r_squared > 0.999999)

let regress_noisy_r2 () =
  let rng = Prng.create 12 in
  let features = Array.init 200 (fun _ -> [| Prng.float rng 5.0 |]) in
  let targets =
    Array.map (fun f -> (4.0 *. f.(0)) +. Prng.gaussian rng) features
  in
  let m = Regress.fit ~features ~targets in
  check_bool "slope near 4" true (Float.abs (m.Regress.coefficients.(0) -. 4.0) < 0.2);
  check_bool "good fit" true (m.Regress.r_squared > 0.9)

let regress_predict () =
  let m =
    Regress.fit
      ~features:[| [| 0.0 |]; [| 1.0 |]; [| 2.0 |]; [| 3.0 |] |]
      ~targets:[| 1.0; 3.0; 5.0; 7.0 |]
  in
  check_bool "predicts y=2x+1" true (Float.abs (Regress.predict m [| 10.0 |] -. 21.0) < 1e-6)

let regress_shape_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Regress.fit: shape") (fun () ->
      ignore (Regress.fit ~features:[||] ~targets:[||]));
  Alcotest.check_raises "underdetermined"
    (Invalid_argument "Regress.fit: underdetermined") (fun () ->
      ignore (Regress.fit ~features:[| [| 1.0; 2.0 |] |] ~targets:[| 1.0 |]))

let solve_linear_system () =
  (* 2x + y = 5; x - y = 1  ->  x = 2, y = 1 *)
  let x = Regress.solve_linear_system [| [| 2.0; 1.0 |]; [| 1.0; -1.0 |] |] [| 5.0; 1.0 |] in
  check_bool "x" true (Float.abs (x.(0) -. 2.0) < 1e-9);
  check_bool "y" true (Float.abs (x.(1) -. 1.0) < 1e-9)

let solve_singular_rejected () =
  check_bool "singular raises" true
    (try
       ignore
         (Regress.solve_linear_system
            [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |]
            [| 1.0; 2.0 |]);
       false
     with Invalid_argument _ -> true)

(* --- Table / Chart / Units --- *)

let table_alignment () =
  let out = Table.render ~header:[ "a"; "b" ] [ [ "xx"; "1" ]; [ "y"; "22" ] ] in
  let lines = String.split_on_char '\n' out in
  check_bool "has 4+ lines" true (List.length lines >= 4);
  check_bool "header first" true
    (String.length (List.nth lines 0) > 0 && String.sub (List.nth lines 0) 0 1 = "a")

let table_ragged_rows_padded () =
  let out = Table.render ~header:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  check_bool "renders without exception" true (String.length out > 0)

let table_fmt () =
  check_string "float" "3.14" (Table.fmt_float 3.14159);
  check_string "speedup" "24.40x" (Table.fmt_speedup 24.4)

let chart_bar () =
  let out = Chart.bar_chart [ ("a", 1.0); ("b", 2.0) ] in
  check_bool "bars drawn" true (String.contains out '#')

let chart_line_empty () =
  let out = Chart.line_chart [ ("s", []) ] in
  check_bool "empty chart ok" true (String.length out > 0)

let chart_line_points () =
  let out =
    Chart.line_chart [ ("s", [ (0.0, 0.0); (1.0, 1.0); (2.0, 4.0) ]) ]
  in
  check_bool "grid drawn" true (String.contains out '#')

let units_seconds () =
  check_string "ms" "1.5 ms" (Units_fmt.seconds 0.0015);
  check_string "us" "2 us" (Units_fmt.seconds 2e-6);
  check_string "s" "3 s" (Units_fmt.seconds 3.0)

let units_bytes () =
  check_string "KiB" "64.00 KiB" (Units_fmt.bytes 65536);
  check_string "B" "12 B" (Units_fmt.bytes 12)

(* --- Domain pool --- *)

let pool_parallel_for_covers () =
  let pool = Domain_pool.create 4 in
  let hits = Array.make 1000 0 in
  Domain_pool.parallel_for pool ~lo:0 ~hi:1000 (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iteri (fun i h -> check_int (Printf.sprintf "index %d hit once" i) 1 h) hits

let pool_round_robin_covers () =
  let pool = Domain_pool.create 3 in
  let hits = Array.make 100 0 in
  Domain_pool.parallel_chunks pool ~lo:0 ~hi:100 (fun ~worker:_ i ->
      hits.(i) <- hits.(i) + 1);
  Array.iter (fun h -> check_int "hit once" 1 h) hits

let pool_round_robin_worker_assignment () =
  let pool = Domain_pool.create 4 in
  let owner = Array.make 40 (-1) in
  Domain_pool.parallel_chunks pool ~lo:0 ~hi:40 (fun ~worker i -> owner.(i) <- worker);
  Array.iteri
    (fun i w -> check_int (Printf.sprintf "i=%d owner" i) (i mod 4) w)
    owner

let pool_empty_range () =
  let pool = Domain_pool.create 4 in
  Domain_pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> Alcotest.fail "must not run")

let pool_exception_propagates () =
  let pool = Domain_pool.create 2 in
  check_bool "exception surfaces" true
    (try
       Domain_pool.parallel_for pool ~lo:0 ~hi:10 (fun i ->
           if i = 7 then failwith "boom");
       false
     with Failure _ -> true)

let pool_sequential_fallback () =
  let acc = ref 0 in
  Domain_pool.parallel_for Domain_pool.sequential ~lo:0 ~hi:10 (fun i -> acc := !acc + i);
  check_int "sum" 45 !acc

let qcheck_tests =
  [
    qc "percentile within [min,max]"
      QCheck.(list_of_size Gen.(int_range 1 40) (float_range (-100.) 100.))
      (fun l ->
        let xs = Array.of_list l in
        let p = Stats.percentile xs 37.0 in
        p >= Stats.minimum xs && p <= Stats.maximum xs);
    qc "mean between min and max"
      QCheck.(list_of_size Gen.(int_range 1 40) (float_range (-50.) 50.))
      (fun l ->
        let xs = Array.of_list l in
        let m = Stats.mean xs in
        m >= Stats.minimum xs -. 1e-9 && m <= Stats.maximum xs +. 1e-9);
    qc "prng int bound" QCheck.(pair small_int (int_range 1 1000)) (fun (seed, n) ->
        let rng = Prng.create seed in
        let k = Prng.int rng n in
        k >= 0 && k < n);
  ]

let suites =
  [
    ( "util.prng",
      [
        tc "deterministic" prng_deterministic;
        tc "seeds differ" prng_seeds_differ;
        tc "copy" prng_copy_independent;
        tc "uniform in range" prng_uniform_range;
        tc "int in range" prng_int_range;
        tc "uniform mean" prng_mean_reasonable;
        tc "gaussian moments" prng_gaussian_moments;
        tc "shuffle permutes" prng_shuffle_permutes;
        tc "split independent" prng_split_independent;
      ] );
    ( "util.stats",
      [
        tc "mean" stats_mean;
        tc "geomean" stats_geomean;
        tc "stddev" stats_stddev;
        tc "minmax" stats_minmax;
        tc "percentile" stats_percentile;
        tc "percentile pure" stats_percentile_does_not_mutate;
        tc "summary" stats_summary;
      ] );
    ( "util.regress",
      [
        tc "exact linear recovery" regress_exact_linear;
        tc "noisy fit" regress_noisy_r2;
        tc "predict" regress_predict;
        tc "shape errors" regress_shape_errors;
        tc "gaussian elimination" solve_linear_system;
        tc "singular rejected" solve_singular_rejected;
      ] );
    ( "util.render",
      [
        tc "table alignment" table_alignment;
        tc "ragged rows" table_ragged_rows_padded;
        tc "formatters" table_fmt;
        tc "bar chart" chart_bar;
        tc "empty line chart" chart_line_empty;
        tc "line chart points" chart_line_points;
        tc "units seconds" units_seconds;
        tc "units bytes" units_bytes;
      ] );
    ( "util.domain_pool",
      [
        tc "parallel_for covers once" pool_parallel_for_covers;
        tc "round robin covers once" pool_round_robin_covers;
        tc "round robin assignment" pool_round_robin_worker_assignment;
        tc "empty range" pool_empty_range;
        tc "exception propagates" pool_exception_propagates;
        tc "sequential fallback" pool_sequential_fallback;
      ] );
    ("util.properties", qcheck_tests);
  ]
