test/test_exec.ml: Alcotest Array Builder Dtype Expr Float Helpers Msc_exec Msc_frontend Msc_ir Msc_schedule Msc_util QCheck Tensor
