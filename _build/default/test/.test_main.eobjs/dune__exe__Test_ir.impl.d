test/test_ir.ml: Alcotest Array Axis Dtype Expr Helpers Kernel List Msc_ir Printf Stencil String Tensor
