test/helpers.ml: Alcotest Array Builder Msc_frontend Msc_ir QCheck QCheck_alcotest
