test/test_extensions.ml: Alcotest Array Filename Float Gen Helpers List Msc_benchsuite Msc_comm Msc_exec Msc_frontend Msc_ir Msc_matrix Msc_schedule Msc_sunway QCheck Result String Sys
