test/test_util.ml: Alcotest Array Float Gen Helpers Int64 List Msc_util Printf QCheck String
