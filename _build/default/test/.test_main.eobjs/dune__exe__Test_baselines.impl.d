test/test_baselines.ml: Alcotest Array Float Helpers List Msc_baselines Msc_benchsuite Msc_ir Msc_sunway Msc_util
