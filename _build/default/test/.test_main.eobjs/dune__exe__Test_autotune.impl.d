test/test_autotune.ml: Alcotest Array Float Helpers List Msc_autotune Msc_benchsuite Msc_util
