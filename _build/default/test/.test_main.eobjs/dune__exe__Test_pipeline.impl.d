test/test_pipeline.ml: Alcotest Autotune Builder Codegen Distributed Dtype Filename Float Grid Helpers List Msc Result Runtime Schedule Stencil Suite Tuning_params Verify
