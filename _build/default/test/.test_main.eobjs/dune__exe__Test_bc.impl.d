test/test_bc.ml: Alcotest Array Builder Filename Float Format Helpers List Msc_codegen Msc_comm Msc_exec Msc_frontend Msc_ir Msc_schedule Printf QCheck String
