test/test_machines.ml: Alcotest Float Helpers List Msc_benchsuite Msc_ir Msc_machine Msc_matrix Msc_schedule Msc_sunway Result
