test/test_misc.ml: Alcotest Bytes Filename Float Format Gen Hashtbl Helpers List Msc_benchsuite Msc_comm Msc_matrix Msc_schedule Msc_sunway Printf QCheck String Sys
