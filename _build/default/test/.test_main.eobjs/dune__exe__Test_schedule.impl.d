test/test_schedule.ml: Alcotest Dtype Float Helpers List Msc_benchsuite Msc_exec Msc_frontend Msc_ir Msc_schedule Msc_sunway Printf QCheck
