test/test_comm.ml: Alcotest Array Bytes Helpers List Msc_benchsuite Msc_comm Msc_exec Msc_frontend Msc_ir QCheck
