test/test_codegen.ml: Alcotest Filename Float Hashtbl Helpers List Msc_codegen Msc_exec Msc_frontend Msc_ir Msc_schedule Printf Result String Sys
