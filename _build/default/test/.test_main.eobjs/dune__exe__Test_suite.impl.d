test/test_suite.ml: Alcotest Array Helpers List Msc_benchsuite Msc_comm Msc_exec Msc_ir Msc_machine String
