test/test_frontend.ml: Alcotest Array Builder Dtype Helpers Kernel List Msc_frontend Msc_ir Msc_schedule Pretty Shapes Stencil String Tensor
