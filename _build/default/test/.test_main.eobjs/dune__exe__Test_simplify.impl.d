test/test_simplify.ml: Alcotest Array Dtype Expr Filename Float Format Helpers Msc_codegen Msc_exec Msc_frontend Msc_ir Msc_schedule Msc_util Printf QCheck String
