(* Tests for the comparator models (OpenACC, OpenMP, Halide, Patus, Physis)
   and the LoC accounting: each baseline must reproduce the *shape* of its
   figure — who wins, by roughly what factor, and where the trend goes. *)

open Helpers
module Suite = Msc_benchsuite.Suite
module Settings = Msc_benchsuite.Settings
module B = Msc_baselines

let all_benchmarks = Suite.all

(* --- OpenACC (Figure 7) --- *)

let openacc_always_slower () =
  List.iter
    (fun b ->
      let st = Suite.stencil b in
      let sched = Settings.sunway_schedule b st in
      match (Msc_sunway.Sim.simulate st sched, B.Openacc_model.simulate st) with
      | Ok msc, Ok acc ->
          check_bool (b.Suite.name ^ " speedup > 5x") true
            (acc.Msc_sunway.Sim.time_per_step_s
            > 5.0 *. msc.Msc_sunway.Sim.time_per_step_s)
      | _ -> Alcotest.fail "simulation failed")
    all_benchmarks

let openacc_average_near_paper () =
  let avg = Msc_benchsuite.Experiments.fig7_average ~precision:Msc_ir.Dtype.F64 in
  check_bool "fp64 avg in [18,38] (paper 24.4)" true (avg > 18.0 && avg < 38.0);
  let avg32 = Msc_benchsuite.Experiments.fig7_average ~precision:Msc_ir.Dtype.F32 in
  check_bool "fp32 avg in [14,30] (paper 20.7)" true (avg32 > 14.0 && avg32 < 30.0);
  check_bool "fp32 gap smaller than fp64 (paper ordering)" true (avg32 < avg)

let openacc_high_order_box_worst () =
  (* "...especially on high-order stencils (e.g., 2d121pt_box and
     2d169pt_box)". *)
  let rows = Msc_benchsuite.Experiments.fig7 ~precision:Msc_ir.Dtype.F64 in
  let speedup name =
    (List.find (fun (r : Msc_benchsuite.Experiments.fig7_row) -> r.benchmark = name) rows)
      .Msc_benchsuite.Experiments.speedup
  in
  let low_order_max = Float.max (speedup "2d9pt_star") (speedup "3d7pt_star") in
  check_bool "121 > low order" true (speedup "2d121pt_box" > low_order_max);
  check_bool "169 > low order" true (speedup "2d169pt_box" > low_order_max)

(* --- OpenMP (Figure 8) --- *)

let openmp_near_parity () =
  let rows = Msc_benchsuite.Experiments.fig8 ~precision:Msc_ir.Dtype.F64 in
  List.iter
    (fun (r : Msc_benchsuite.Experiments.fig8_row) ->
      check_bool (r.benchmark ^ " within [1.0, 1.10]") true
        (r.speedup >= 1.0 && r.speedup <= 1.10))
    rows;
  let avg =
    Msc_util.Stats.mean
      (Array.of_list (List.map (fun (r : Msc_benchsuite.Experiments.fig8_row) -> r.speedup) rows))
  in
  check_bool "average near 1.05" true (avg > 1.01 && avg < 1.08)

let openmp_multiplier_stable () =
  check_float "deterministic"
    (B.Openmp_model.time_multiplier ~benchmark:"x")
    (B.Openmp_model.time_multiplier ~benchmark:"x")

(* --- Halide (Figure 12) --- *)

let halide_ordering () =
  let rows = Msc_benchsuite.Experiments.fig12 () in
  List.iter
    (fun (r : B.Halide_model.comparison) ->
      check_bool "JIT slowest" true
        (r.B.Halide_model.halide_jit_time_s > r.B.Halide_model.halide_aot_time_s))
    rows;
  (* Paper: AOT beats MSC on small stencils, MSC wins on large ones. *)
  let row name = List.find (fun (r : B.Halide_model.comparison) -> r.B.Halide_model.benchmark = name) rows in
  let small = row "2d9pt_star" in
  check_bool "AOT wins small" true
    (small.B.Halide_model.halide_aot_time_s < small.B.Halide_model.msc_time_s);
  let large = row "2d169pt_box" in
  check_bool "MSC wins large" true
    (large.B.Halide_model.msc_time_s < large.B.Halide_model.halide_aot_time_s)

let halide_averages () =
  let rows = Msc_benchsuite.Experiments.fig12 () in
  let avg f = Msc_util.Stats.mean (Array.of_list (List.map f rows)) in
  let aot = avg (fun r -> r.B.Halide_model.speedup_aot_vs_jit) in
  let msc = avg (fun r -> r.B.Halide_model.speedup_msc_vs_jit) in
  check_bool "AOT avg in [2,4.5] (paper 2.92)" true (aot > 2.0 && aot < 4.5);
  check_bool "MSC avg in [2.3,5] (paper 3.33)" true (msc > 2.3 && msc < 5.0);
  check_bool "MSC > AOT on average" true (msc > aot)

(* --- Patus (Figure 13) --- *)

let patus_msc_wins_everywhere () =
  let rows = Msc_benchsuite.Experiments.fig13 () in
  List.iter
    (fun (r : B.Patus_model.comparison) ->
      check_bool (r.B.Patus_model.benchmark ^ " MSC faster") true (r.B.Patus_model.speedup > 1.0))
    rows;
  let avg =
    Msc_util.Stats.mean
      (Array.of_list (List.map (fun (r : B.Patus_model.comparison) -> r.B.Patus_model.speedup) rows))
  in
  check_bool "average in [3.5, 9] (paper 5.94)" true (avg > 3.5 && avg < 9.0)

let patus_3d_star_suffers_most () =
  (* "...the 3D star stencils ... suffer more from discrete memory
     accesses". *)
  check_bool "3d high-order bw efficiency lowest" true
    (B.Patus_model.bandwidth_efficiency (Suite.stencil (Suite.find "3d31pt_star"))
    < B.Patus_model.bandwidth_efficiency (Suite.stencil (Suite.find "2d9pt_box")))

(* --- Physis (Figure 14) --- *)

let physis_msc_wins_everywhere () =
  let rows = Msc_benchsuite.Experiments.fig14 () in
  check_int "8 benchmarks x 3 configs" 24 (List.length rows);
  List.iter
    (fun (r : B.Physis_model.comparison) ->
      check_bool (r.B.Physis_model.benchmark ^ " MSC faster") true (r.B.Physis_model.speedup > 1.0))
    rows

let physis_average_near_paper () =
  let rows = Msc_benchsuite.Experiments.fig14 () in
  let avg =
    Msc_util.Stats.mean
      (Array.of_list
         (List.map (fun (r : B.Physis_model.comparison) -> r.B.Physis_model.speedup) rows))
  in
  check_bool "average in [5, 16] (paper 9.88)" true (avg > 5.0 && avg < 16.0)

let physis_high_order_gap_larger () =
  let rows = Msc_benchsuite.Experiments.fig14 () in
  let avg_for name =
    let xs =
      List.filter_map
        (fun (r : B.Physis_model.comparison) ->
          if r.B.Physis_model.benchmark = name then Some r.B.Physis_model.speedup else None)
        rows
    in
    Msc_util.Stats.mean (Array.of_list xs)
  in
  check_bool "2d121 gap > 2d9 gap" true (avg_for "2d121pt_box" > avg_for "2d9pt_box")

(* --- LoC (Table 6) --- *)

let loc_msc_always_fewer () =
  List.iter
    (fun (r : B.Loc.row) ->
      check_bool (r.B.Loc.benchmark ^ " msc < openacc") true (r.B.Loc.msc_sunway < r.B.Loc.openacc);
      check_bool (r.B.Loc.benchmark ^ " msc < openmp") true (r.B.Loc.msc_matrix < r.B.Loc.openmp))
    (Msc_benchsuite.Experiments.table6 ())

let loc_grows_with_order_for_baselines () =
  let rows = Msc_benchsuite.Experiments.table6 () in
  let get name = List.find (fun (r : B.Loc.row) -> r.B.Loc.benchmark = name) rows in
  check_bool "openmp 169 > 9" true ((get "2d169pt_box").B.Loc.openmp > (get "2d9pt_box").B.Loc.openmp);
  (* MSC's DSL program stays nearly constant. *)
  check_bool "msc roughly flat" true
    (abs ((get "2d169pt_box").B.Loc.msc_matrix - (get "2d9pt_box").B.Loc.msc_matrix) <= 5)

let loc_reduction_substantial_on_matrix () =
  (* Paper: 74% average reduction vs OpenMP. *)
  let rows = Msc_benchsuite.Experiments.table6 () in
  let reductions =
    List.map
      (fun (r : B.Loc.row) ->
        1.0 -. (float_of_int r.B.Loc.msc_matrix /. float_of_int r.B.Loc.openmp))
      rows
  in
  let avg = Msc_util.Stats.mean (Array.of_list reductions) in
  check_bool "avg reduction > 50%" true (avg > 0.5)

let suites =
  [
    ( "baselines.openacc",
      [
        tc "always slower" openacc_always_slower;
        tc "average near paper" openacc_average_near_paper;
        tc "high-order box worst" openacc_high_order_box_worst;
      ] );
    ( "baselines.openmp",
      [ tc "near parity" openmp_near_parity; tc "multiplier stable" openmp_multiplier_stable ]
    );
    ("baselines.halide", [ tc "ordering" halide_ordering; tc "averages" halide_averages ]);
    ( "baselines.patus",
      [ tc "msc wins" patus_msc_wins_everywhere; tc "3d star worst" patus_3d_star_suffers_most ]
    );
    ( "baselines.physis",
      [
        tc "msc wins" physis_msc_wins_everywhere;
        tc "average near paper" physis_average_near_paper;
        tc "high-order gap" physis_high_order_gap_larger;
      ] );
    ( "baselines.loc",
      [
        tc "msc fewer lines" loc_msc_always_fewer;
        tc "baselines grow with order" loc_grows_with_order_for_baselines;
        tc "matrix reduction" loc_reduction_substantial_on_matrix;
      ] );
  ]
