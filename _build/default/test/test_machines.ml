(* Tests for machine descriptors, roofline analysis, and the Sunway/Matrix
   performance simulators. *)

open Helpers
module Machine = Msc_machine.Machine
module Roofline = Msc_machine.Roofline
module Spm = Msc_sunway.Spm
module Dma = Msc_sunway.Dma
module Ssim = Msc_sunway.Sim
module Cache = Msc_matrix.Cache
module Msim = Msc_matrix.Sim
module Schedule = Msc_schedule.Schedule

(* --- Machine --- *)

let machine_peaks () =
  (* One CG = 64 CPEs * 8 flops/cycle * 1.45 GHz ~= 742 GFlops fp64. *)
  let p = Machine.peak_gflops Machine.sunway_cg Msc_ir.Dtype.F64 in
  check_bool "CG peak ~742" true (Float.abs (p -. 742.4) < 1.0);
  check_float "fp32 doubles" (2.0 *. p) (Machine.peak_gflops Machine.sunway_cg Msc_ir.Dtype.F32);
  (* Matrix SN: 32 * 8 * 2.0 = 512. *)
  check_float "Matrix SN peak" 512.0 (Machine.peak_gflops Machine.matrix_node Msc_ir.Dtype.F64)

let machine_effective () =
  let m = Machine.sunway_cg in
  check_bool "box >= star efficiency" true
    (Machine.effective_gflops m Msc_ir.Dtype.F64 ~shape_box:true
    >= Machine.effective_gflops m Msc_ir.Dtype.F64 ~shape_box:false)

(* --- Roofline --- *)

let roofline_ridge () =
  let ridge = Roofline.ridge_point Machine.sunway_cg Msc_ir.Dtype.F64 in
  check_bool "ridge ~21.8" true (Float.abs (ridge -. (742.4 /. 34.0)) < 0.1)

let roofline_attainable () =
  let m = Machine.sunway_cg in
  (* Below the ridge: bandwidth-limited. *)
  check_float "bw roof" 34.0 (Roofline.attainable m Msc_ir.Dtype.F64 ~intensity:1.0);
  (* Far above: compute-limited. *)
  check_float "compute roof"
    (Machine.peak_gflops m Msc_ir.Dtype.F64)
    (Roofline.attainable m Msc_ir.Dtype.F64 ~intensity:1000.0)

let roofline_classify () =
  let m = Machine.sunway_cg in
  check_bool "low OI memory bound" true
    (Roofline.classify m Msc_ir.Dtype.F64 ~intensity:1.0 = Roofline.Memory_bound);
  check_bool "high OI compute bound" true
    (Roofline.classify m Msc_ir.Dtype.F64 ~intensity:100.0 = Roofline.Compute_bound)

(* --- SPM allocator --- *)

let spm_alloc_free () =
  let spm = Spm.create () in
  check_int "64 KiB" 65536 (Spm.capacity spm);
  check_bool "alloc ok" true (Spm.alloc spm ~name:"a" ~bytes:30000 = Ok ());
  check_bool "second ok" true (Spm.alloc spm ~name:"b" ~bytes:30000 = Ok ());
  check_bool "overflow" true (Result.is_error (Spm.alloc spm ~name:"c" ~bytes:10000));
  Spm.free spm ~name:"a";
  check_bool "after free" true (Spm.alloc spm ~name:"c" ~bytes:10000 = Ok ());
  check_bool "utilization" true (Spm.utilization spm > 0.6)

let spm_duplicate_name () =
  let spm = Spm.create () in
  ignore (Spm.alloc spm ~name:"x" ~bytes:8);
  check_bool "dup rejected" true (Result.is_error (Spm.alloc spm ~name:"x" ~bytes:8))

let spm_reset () =
  let spm = Spm.create () in
  ignore (Spm.alloc spm ~name:"x" ~bytes:1024);
  Spm.reset spm;
  check_int "used 0" 0 (Spm.used spm)

(* --- DMA engine --- *)

let dma_time_components () =
  let e = { Dma.descriptor_latency_s = 1e-6; bandwidth_gbs = 10.0; concurrent_engines = 1 } in
  (* 1e9 bytes at 10 GB/s = 0.1 s plus 10 descriptors * 1 us. *)
  let t = Dma.time e { Dma.bytes = 1e9; descriptors = 10 } in
  check_bool "time" true (Float.abs (t -. 0.10001) < 1e-6)

let dma_concurrency_hides_latency () =
  let base = { Dma.descriptor_latency_s = 1e-6; bandwidth_gbs = 10.0; concurrent_engines = 1 } in
  let wide = { base with Dma.concurrent_engines = 64 } in
  let tr = { Dma.bytes = 1e6; descriptors = 6400 } in
  check_bool "64 engines faster" true (Dma.time wide tr < Dma.time base tr)

let dma_effective_bandwidth_degrades () =
  let e = { Dma.descriptor_latency_s = 1e-6; bandwidth_gbs = 10.0; concurrent_engines = 1 } in
  let long_rows = { Dma.bytes = 1e8; descriptors = 100 } in
  let short_rows = { Dma.bytes = 1e8; descriptors = 1_000_000 } in
  check_bool "short rows slower" true
    (Dma.effective_bandwidth_gbs e short_rows < Dma.effective_bandwidth_gbs e long_rows)

(* --- Sunway simulator --- *)

let bench st_name = Msc_benchsuite.Suite.find st_name

let ssim_report st_name =
  let b = bench st_name in
  let st = Msc_benchsuite.Suite.stencil b in
  let sched = Msc_benchsuite.Settings.sunway_schedule b st in
  match Ssim.simulate st sched with
  | Ok r -> r
  | Error msg -> Alcotest.fail msg

let ssim_sane () =
  let r = ssim_report "3d7pt_star" in
  check_bool "positive time" true (r.Ssim.time_per_step_s > 0.0);
  check_bool "gflops plausible" true (r.Ssim.gflops > 1.0 && r.Ssim.gflops < 742.0);
  check_bool "spm within capacity" true (r.Ssim.counters.Ssim.spm_utilization <= 1.0);
  check_bool "memory bound" true (r.Ssim.bound = Msc_machine.Roofline.Memory_bound)

let ssim_tiles_per_cpe () =
  (* The paper: 3d13pt on 256^3 -> each CPE computes 256 tiles with the
     paper's (2,8,64) tile; our SPM-fitting (2,4,64) tile doubles that. *)
  let r = ssim_report "3d13pt_star" in
  check_float "512 tiles per CPE" 512.0 r.Ssim.counters.Ssim.tiles_per_cpe

let ssim_spm_overflow_detected () =
  let b = bench "3d31pt_star" in
  let st = Msc_benchsuite.Suite.stencil b in
  let k = Msc_benchsuite.Suite.kernel_of st in
  let sched = Schedule.sunway_canonical ~tile:[| 8; 8; 64 |] k in
  check_bool "overflow error" true (Result.is_error (Ssim.simulate st sched))

let ssim_box_compute_bound () =
  (* The paper's roofline: 2d169pt is compute-bound on Sunway, 2d121pt is
     not. *)
  let r169 = ssim_report "2d169pt_box" in
  let r121 = ssim_report "2d121pt_box" in
  check_bool "169 compute bound" true (r169.Ssim.bound = Msc_machine.Roofline.Compute_bound);
  check_bool "121 memory bound" true (r121.Ssim.bound = Msc_machine.Roofline.Memory_bound)

let ssim_fp32_faster () =
  let b = bench "3d7pt_star" in
  let st64 = Msc_benchsuite.Suite.stencil ~dtype:Msc_ir.Dtype.F64 b in
  let st32 = Msc_benchsuite.Suite.stencil ~dtype:Msc_ir.Dtype.F32 b in
  let sched64 = Msc_benchsuite.Settings.sunway_schedule b st64 in
  let sched32 = Msc_benchsuite.Settings.sunway_schedule b st32 in
  match (Ssim.simulate st64 sched64, Ssim.simulate st32 sched32) with
  | Ok r64, Ok r32 ->
      check_bool "fp32 faster" true (r32.Ssim.time_per_step_s < r64.Ssim.time_per_step_s)
  | _ -> Alcotest.fail "simulation failed"

let ssim_larger_tiles_amortize_dma () =
  let b = bench "3d7pt_star" in
  let st = Msc_benchsuite.Suite.stencil b in
  let k = Msc_benchsuite.Suite.kernel_of st in
  let small = Schedule.sunway_canonical ~tile:[| 1; 1; 16 |] k in
  let big = Schedule.sunway_canonical ~tile:[| 2; 8; 64 |] k in
  match (Ssim.simulate st small, Ssim.simulate st big) with
  | Ok rs, Ok rb ->
      check_bool "bigger tile faster" true (rb.Ssim.time_per_step_s < rs.Ssim.time_per_step_s)
  | _ -> Alcotest.fail "simulation failed"

let ssim_is_box_shaped () =
  check_bool "box" true
    (Ssim.is_box_shaped (Msc_benchsuite.Suite.stencil (bench "2d9pt_box")));
  check_bool "star" false
    (Ssim.is_box_shaped (Msc_benchsuite.Suite.stencil (bench "2d9pt_star")))

(* --- Cache model + Matrix simulator --- *)

let lru_hits_and_misses () =
  let c = Cache.Lru.create ~line_bytes:64 ~associativity:2 ~capacity_bytes:1024 () in
  check_bool "first access misses" true (Cache.Lru.access c 0 = `Miss);
  check_bool "same line hits" true (Cache.Lru.access c 8 = `Hit);
  check_bool "next line misses" true (Cache.Lru.access c 64 = `Miss);
  check_int "accesses" 3 (Cache.Lru.accesses c);
  check_int "misses" 2 (Cache.Lru.misses c)

let lru_eviction () =
  (* 2-way set: three lines mapping to the same set evict the LRU one. *)
  let c = Cache.Lru.create ~line_bytes:64 ~associativity:2 ~capacity_bytes:1024 () in
  let sets = 1024 / (64 * 2) in
  let addr k = k * sets * 64 in
  ignore (Cache.Lru.access c (addr 0));
  ignore (Cache.Lru.access c (addr 1));
  ignore (Cache.Lru.access c (addr 2));
  check_bool "LRU line evicted" true (Cache.Lru.access c (addr 0) = `Miss);
  (* Refilling addr0 evicted the then-LRU addr1; addr2 stays resident. *)
  check_bool "MRU line survives" true (Cache.Lru.access c (addr 2) = `Hit)

let lru_working_set_fits () =
  let c = Cache.Lru.create ~capacity_bytes:8192 () in
  (* Stream 4 KiB twice: second pass must be all hits. *)
  for pass = 1 to 2 do
    for addr = 0 to 63 do
      let r = Cache.Lru.access c (addr * 64) in
      if pass = 2 then check_bool "second pass hits" true (r = `Hit)
    done
  done

let lru_reset () =
  let c = Cache.Lru.create ~capacity_bytes:1024 () in
  ignore (Cache.Lru.access c 0);
  Cache.Lru.reset c;
  check_int "cleared" 0 (Cache.Lru.accesses c);
  check_bool "cold again" true (Cache.Lru.access c 0 = `Miss)

let traffic_model () =
  let fits =
    Cache.traffic_bytes ~capacity_bytes:1000 ~working_set_bytes:500
      ~compulsory_bytes:100.0 ~resident_reuse:5.0
  in
  check_float "resident = compulsory" 100.0 fits;
  let thrash =
    Cache.traffic_bytes ~capacity_bytes:1000 ~working_set_bytes:100000
      ~compulsory_bytes:100.0 ~resident_reuse:5.0
  in
  check_bool "overflow amplifies" true (thrash > 100.0 && thrash <= 500.1)

let msim_sane () =
  let b = bench "2d9pt_star" in
  let st = Msc_benchsuite.Suite.stencil b in
  match Msim.simulate st (Msc_benchsuite.Settings.matrix_schedule b st) with
  | Ok r ->
      check_bool "positive" true (r.Msim.time_per_step_s > 0.0);
      check_bool "below peak" true (r.Msim.gflops < 512.0);
      check_bool "cache resident" true r.Msim.cache_resident
  | Error msg -> Alcotest.fail msg

let msim_all_memory_bound () =
  (* Figure 9(b): on Matrix even 2d169pt stays memory-bound. *)
  List.iter
    (fun name ->
      let b = bench name in
      let st = Msc_benchsuite.Suite.stencil b in
      match Msim.simulate st (Msc_benchsuite.Settings.matrix_schedule b st) with
      | Ok r ->
          check_bool (name ^ " memory bound") true
            (r.Msim.bound = Msc_machine.Roofline.Memory_bound)
      | Error msg -> Alcotest.fail msg)
    [ "2d121pt_box"; "2d169pt_box"; "3d7pt_star" ]

let suites =
  [
    ( "machine",
      [
        tc "peaks" machine_peaks;
        tc "effective" machine_effective;
        tc "roofline ridge" roofline_ridge;
        tc "roofline attainable" roofline_attainable;
        tc "roofline classify" roofline_classify;
      ] );
    ( "sunway.spm_dma",
      [
        tc "alloc/free" spm_alloc_free;
        tc "duplicate name" spm_duplicate_name;
        tc "reset" spm_reset;
        tc "dma time" dma_time_components;
        tc "dma concurrency" dma_concurrency_hides_latency;
        tc "dma short rows" dma_effective_bandwidth_degrades;
      ] );
    ( "sunway.sim",
      [
        tc "sane report" ssim_sane;
        tc "tiles per cpe" ssim_tiles_per_cpe;
        tc "spm overflow" ssim_spm_overflow_detected;
        tc "169 compute / 121 memory" ssim_box_compute_bound;
        tc "fp32 faster" ssim_fp32_faster;
        tc "tiles amortize dma" ssim_larger_tiles_amortize_dma;
        tc "box shape detection" ssim_is_box_shaped;
      ] );
    ( "matrix.cache_sim",
      [
        tc "lru hit/miss" lru_hits_and_misses;
        tc "lru eviction" lru_eviction;
        tc "lru working set" lru_working_set_fits;
        tc "lru reset" lru_reset;
        tc "traffic model" traffic_model;
        tc "sim sane" msim_sane;
        tc "all memory bound" msim_all_memory_bound;
      ] );
  ]
