(* Tests for the single-level IR: dtypes, expressions, axes, tensors,
   kernels and stencils (paper Table 2). *)

open Helpers
open Msc_ir

(* --- Dtype --- *)

let dtype_sizes () =
  check_int "f64" 8 (Dtype.size_bytes Dtype.F64);
  check_int "f32" 4 (Dtype.size_bytes Dtype.F32);
  check_int "i32" 4 (Dtype.size_bytes Dtype.I32)

let dtype_c_names () =
  check_string "f64" "double" (Dtype.to_c Dtype.F64);
  check_string "f32" "float" (Dtype.to_c Dtype.F32);
  check_string "i32" "int" (Dtype.to_c Dtype.I32)

let dtype_tolerances () =
  (* The §5.1 thresholds. *)
  check_float "f64" 1e-10 (Dtype.tolerance Dtype.F64);
  check_float "f32" 1e-5 (Dtype.tolerance Dtype.F32)

(* --- Expr --- *)

let sample_expr =
  Expr.(
    (p "c0" * read "B" [| 0; 0 |])
    + (p "c1" * read "B" [| -1; 0 |])
    + (p "c2" * read "B" [| 1; 0 |]))

let expr_accesses () =
  check_int "three reads" 3 (List.length (Expr.accesses sample_expr));
  check_int "three distinct" 3 (List.length (Expr.distinct_accesses sample_expr))

let expr_duplicate_accesses_merged () =
  let e = Expr.(read "B" [| 0 |] + read "B" [| 0 |]) in
  check_int "raw count" 2 (List.length (Expr.accesses e));
  check_int "distinct count" 1 (List.length (Expr.distinct_accesses e))

let expr_flops () =
  (* 3 muls + 2 adds. *)
  check_int "flops" 5 (Expr.flops sample_expr)

let expr_params () =
  Alcotest.(check (list string)) "params in order" [ "c0"; "c1"; "c2" ]
    (Expr.params sample_expr)

let expr_linear_taps () =
  match
    Expr.linear_taps
      ~bindings:[ ("c0", 0.5); ("c1", 0.25); ("c2", 0.25) ]
      sample_expr
  with
  | None -> Alcotest.fail "expected linear"
  | Some taps ->
      check_int "three taps" 3 (List.length taps);
      let total = List.fold_left (fun acc (t : Expr.tap) -> acc +. t.Expr.coeff) 0.0 taps in
      check_float "weights sum" 1.0 total

let expr_taps_merge_same_offset () =
  let e = Expr.((f 0.25 * read "B" [| 0 |]) + (f 0.5 * read "B" [| 0 |])) in
  match Expr.linear_taps ~bindings:[] e with
  | Some [ tap ] -> check_float "merged coeff" 0.75 tap.Expr.coeff
  | Some _ | None -> Alcotest.fail "expected one merged tap"

let expr_nonlinear_rejected () =
  let e = Expr.(read "B" [| 0 |] * read "B" [| 0 |]) in
  check_bool "product of reads is non-linear" true (Expr.linear_taps ~bindings:[] e = None)

let expr_affine_rejected () =
  (* A nonzero additive constant cannot be expressed as taps. *)
  let e = Expr.(read "B" [| 0 |] + f 1.0) in
  check_bool "affine rejected" true (Expr.linear_taps ~bindings:[] e = None)

let expr_div_by_const_linear () =
  let e = Expr.(read "B" [| 0 |] / f 4.0) in
  match Expr.linear_taps ~bindings:[] e with
  | Some [ tap ] -> check_float "quarter" 0.25 tap.Expr.coeff
  | Some _ | None -> Alcotest.fail "expected linear division"

let expr_eval () =
  let load (a : Expr.access) = float_of_int (10 + a.Expr.offsets.(0)) in
  let v =
    Expr.eval ~bindings:[ ("c0", 2.0) ]
      ~load
      ~var:(fun _ -> 0.0)
      Expr.(p "c0" * (read "B" [| 1 |] - read "B" [| -1 |]))
  in
  check_float "2 * (11 - 9)" 4.0 v

let expr_eval_calls () =
  let v =
    Expr.eval ~bindings:[] ~load:(fun _ -> 0.0) ~var:(fun _ -> 0.0)
      Expr.(Call ("pow", [ f 2.0; f 10.0 ]))
  in
  check_float "pow" 1024.0 v

let expr_eval_unbound_param () =
  check_bool "unbound raises" true
    (try
       ignore (Expr.eval ~bindings:[] ~load:(fun _ -> 0.0) ~var:(fun _ -> 0.0) (Expr.p "x"));
       false
     with Invalid_argument _ -> true)

let expr_rename_tensor () =
  let e = Expr.rename_tensor ~from:"B" ~to_:"A" sample_expr in
  List.iter
    (fun (a : Expr.access) -> check_string "renamed" "A" a.Expr.tensor)
    (Expr.accesses e)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.equal (String.sub haystack i n) needle || scan (i + 1)) in
  scan 0

let expr_to_c () =
  let c =
    Expr.to_c
      ~index:(fun a -> Printf.sprintf "B[%d]" a.Expr.offsets.(0))
      Expr.(f 2.0 * read "B" [| 1 |])
  in
  check_bool "contains access" true (contains ~needle:"B[1]" c);
  check_bool "float literal" true (contains ~needle:"2" c)

let expr_equal () =
  check_bool "structural equality" true (Expr.equal sample_expr sample_expr);
  check_bool "inequality" false (Expr.equal sample_expr (Expr.f 1.0))

(* --- Axis --- *)

let axis_extent () =
  let ax = Axis.make "i" ~stop:10 ~order:0 in
  check_int "extent" 10 (Axis.extent ax);
  let strided = Axis.make ~start:0 ~stride:3 "i" ~stop:10 ~order:0 in
  check_int "ceil extent" 4 (Axis.extent strided)

let axis_trip_count () =
  let axes = [ Axis.make "i" ~stop:4 ~order:0; Axis.make "j" ~stop:5 ~order:1 ] in
  check_int "product" 20 (Axis.trip_count axes)

(* --- Tensor --- *)

let tensor_sp () =
  let t = Tensor.sp ~time_window:2 ~halo:[| 2; 1 |] "B" Dtype.F64 [| 8; 16 |] in
  check_int "ndim" 2 (Tensor.ndim t);
  check_int "elems" 128 (Tensor.elems t);
  Alcotest.(check (array int)) "padded" [| 12; 18 |] (Tensor.padded_shape t);
  check_int "footprint" (12 * 18 * 8 * 2) (Tensor.footprint_bytes t)

let tensor_te_no_halo () =
  let t = Tensor.te "tmp" Dtype.F32 [| 4; 4 |] in
  Alcotest.(check (array int)) "no halo" [| 0; 0 |] t.Tensor.halo;
  check_int "tw 1" 1 t.Tensor.time_window

let tensor_validation () =
  check_bool "negative extent" true
    (try ignore (Tensor.sp "B" Dtype.F64 [| -1 |]); false
     with Invalid_argument _ -> true);
  check_bool "halo rank mismatch" true
    (try ignore (Tensor.sp ~halo:[| 1 |] "B" Dtype.F64 [| 4; 4 |]); false
     with Invalid_argument _ -> true)

(* --- Kernel --- *)

let mk_grid () = Tensor.sp ~time_window:2 ~halo:[| 1; 1 |] "B" Dtype.F64 [| 8; 8 |]

let kernel_basic () =
  let grid = mk_grid () in
  let k =
    Kernel.make ~bindings:[ ("c", 0.25) ] ~name:"K" ~input:grid
      ~index_vars:[ "j"; "i" ]
      Expr.(p "c" * (read "B" [| 0; 1 |] + read "B" [| 0; -1 |] + read "B" [| 1; 0 |] + read "B" [| -1; 0 |]))
  in
  check_int "points" 4 (Kernel.points k);
  Alcotest.(check (array int)) "radius" [| 1; 1 |] (Kernel.radius k);
  check_int "read bytes" 32 (Kernel.read_bytes_per_point k);
  check_int "write bytes" 8 (Kernel.write_bytes_per_point k);
  check_bool "linear" true (Kernel.taps k <> None)

let kernel_rejects_offset_beyond_halo () =
  let grid = mk_grid () in
  check_bool "halo exceeded" true
    (try
       ignore
         (Kernel.make ~name:"K" ~input:grid ~index_vars:[ "j"; "i" ]
            (Expr.read "B" [| 2; 0 |]));
       false
     with Invalid_argument _ -> true)

let kernel_rejects_wrong_tensor () =
  let grid = mk_grid () in
  check_bool "foreign tensor" true
    (try
       ignore
         (Kernel.make ~name:"K" ~input:grid ~index_vars:[ "j"; "i" ]
            (Expr.read "A" [| 0; 0 |]));
       false
     with Invalid_argument _ -> true)

let kernel_rejects_unbound_param () =
  let grid = mk_grid () in
  check_bool "unbound" true
    (try
       ignore
         (Kernel.make ~name:"K" ~input:grid ~index_vars:[ "j"; "i" ]
            Expr.(p "nope" * read "B" [| 0; 0 |]));
       false
     with Invalid_argument _ -> true)

let kernel_rejects_rank_mismatch () =
  let grid = mk_grid () in
  check_bool "rank" true
    (try
       ignore (Kernel.make ~name:"K" ~input:grid ~index_vars:[ "i" ] (Expr.read "B" [| 0; 0 |]));
       false
     with Invalid_argument _ -> true)

(* --- Stencil --- *)

let stencil_time_window () =
  let _, st = stencil_3d7pt () in
  check_int "window 2" 2 (Stencil.time_window st);
  check_int "one kernel" 1 (List.length (Stencil.kernels st))

let stencil_flops () =
  let k, st = stencil_3d7pt () in
  (* two kernel applications + 2 scales + 1 sum *)
  check_int "combined flops"
    ((2 * Kernel.flops_per_point k) + 3)
    (Stencil.flops_per_point st)

let stencil_read_bytes_counts_states () =
  let k, st = stencil_3d7pt () in
  check_int "reads from both states"
    (2 * Kernel.read_bytes_per_point k)
    (Stencil.read_bytes_per_point st)

let stencil_rejects_zero_offset () =
  let grid = mk_grid () in
  let k = Kernel.make ~name:"K" ~input:grid ~index_vars:[ "j"; "i" ] (Expr.read "B" [| 0; 0 |]) in
  check_bool "t-0 rejected" true
    (try ignore (Stencil.make ~name:"bad" ~grid (Stencil.Apply (k, 0))); false
     with Invalid_argument _ -> true)

let stencil_rejects_narrow_time_window () =
  let grid = Tensor.sp ~time_window:1 ~halo:[| 1; 1 |] "B" Dtype.F64 [| 8; 8 |] in
  let k = Kernel.make ~name:"K" ~input:grid ~index_vars:[ "j"; "i" ] (Expr.read "B" [| 0; 0 |]) in
  check_bool "window too small" true
    (try
       ignore
         (Stencil.make ~name:"bad" ~grid
            (Stencil.Sum (Stencil.Apply (k, 1), Stencil.Apply (k, 2))));
       false
     with Invalid_argument _ -> true)

let stencil_wave_uses_states () =
  let st = stencil_wave2d () in
  check_int "window 2" 2 (Stencil.time_window st);
  check_int "one kernel (identity terms are states)" 1
    (List.length (Stencil.kernels st))

let stencil_radius () =
  let _, st = stencil_3d7pt () in
  Alcotest.(check (array int)) "radius 1" [| 1; 1; 1 |] (Stencil.radius st)

let suites =
  [
    ( "ir.dtype",
      [ tc "sizes" dtype_sizes; tc "c names" dtype_c_names; tc "tolerances" dtype_tolerances ]
    );
    ( "ir.expr",
      [
        tc "accesses" expr_accesses;
        tc "duplicates merged" expr_duplicate_accesses_merged;
        tc "flops" expr_flops;
        tc "params" expr_params;
        tc "linear taps" expr_linear_taps;
        tc "taps merge" expr_taps_merge_same_offset;
        tc "nonlinear rejected" expr_nonlinear_rejected;
        tc "affine rejected" expr_affine_rejected;
        tc "division linear" expr_div_by_const_linear;
        tc "eval" expr_eval;
        tc "eval calls" expr_eval_calls;
        tc "eval unbound param" expr_eval_unbound_param;
        tc "rename tensor" expr_rename_tensor;
        tc "to_c" expr_to_c;
        tc "equality" expr_equal;
      ] );
    ("ir.axis", [ tc "extent" axis_extent; tc "trip count" axis_trip_count ]);
    ( "ir.tensor",
      [ tc "sp node" tensor_sp; tc "te node" tensor_te_no_halo; tc "validation" tensor_validation ]
    );
    ( "ir.kernel",
      [
        tc "basic" kernel_basic;
        tc "offset beyond halo" kernel_rejects_offset_beyond_halo;
        tc "wrong tensor" kernel_rejects_wrong_tensor;
        tc "unbound param" kernel_rejects_unbound_param;
        tc "rank mismatch" kernel_rejects_rank_mismatch;
      ] );
    ( "ir.stencil",
      [
        tc "time window" stencil_time_window;
        tc "flops" stencil_flops;
        tc "read bytes count states" stencil_read_bytes_counts_states;
        tc "t-0 rejected" stencil_rejects_zero_offset;
        tc "narrow window rejected" stencil_rejects_narrow_time_window;
        tc "wave uses states" stencil_wave_uses_states;
        tc "radius" stencil_radius;
      ] );
  ]
