let seconds s =
  let abs = Float.abs s in
  if abs >= 1.0 then Printf.sprintf "%.3g s" s
  else if abs >= 1e-3 then Printf.sprintf "%.3g ms" (s *. 1e3)
  else if abs >= 1e-6 then Printf.sprintf "%.3g us" (s *. 1e6)
  else Printf.sprintf "%.3g ns" (s *. 1e9)

let bytes n =
  let f = float_of_int n in
  if f >= 1024.0 *. 1024.0 *. 1024.0 then
    Printf.sprintf "%.2f GiB" (f /. (1024.0 *. 1024.0 *. 1024.0))
  else if f >= 1024.0 *. 1024.0 then Printf.sprintf "%.2f MiB" (f /. (1024.0 *. 1024.0))
  else if f >= 1024.0 then Printf.sprintf "%.2f KiB" (f /. 1024.0)
  else Printf.sprintf "%d B" n

let scaled suffix x =
  let abs = Float.abs x in
  if abs >= 1e12 then Printf.sprintf "%.3g T%s" (x /. 1e12) suffix
  else if abs >= 1e9 then Printf.sprintf "%.3g G%s" (x /. 1e9) suffix
  else if abs >= 1e6 then Printf.sprintf "%.3g M%s" (x /. 1e6) suffix
  else if abs >= 1e3 then Printf.sprintf "%.3g K%s" (x /. 1e3) suffix
  else Printf.sprintf "%.3g %s" x suffix

let flops x = scaled "Flop/s" x
let count x = scaled "" x
