(** Multivariable linear regression by least squares (normal equations).

    This backs the analytical performance model the paper's auto-tuner uses to
    predict stencil kernel time from schedule parameters (§4.4,
    "Performance auto-tuning"). *)

type model = {
  intercept : float;
  coefficients : float array;
  r_squared : float;
}

val fit : features:float array array -> targets:float array -> model
(** [fit ~features ~targets] solves ordinary least squares with an intercept
    term. [features] is one row per observation; all rows must share a length
    and there must be at least [dim + 1] observations.
    @raise Invalid_argument on shape mismatch or a singular system. *)

val predict : model -> float array -> float
(** Apply the fitted model to one feature vector. *)

val solve_linear_system : float array array -> float array -> float array
(** [solve_linear_system a b] solves [a x = b] by Gaussian elimination with
    partial pivoting. [a] is mutated. @raise Invalid_argument if singular. *)
