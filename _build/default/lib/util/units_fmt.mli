(** Human-readable unit formatting. *)

val seconds : float -> string
(** e.g. ["1.23 s"], ["45.6 ms"], ["789 us"], ["12.3 ns"]. *)

val bytes : int -> string
(** e.g. ["64.0 KiB"], ["1.5 MiB"]. *)

val flops : float -> string
(** Rate: e.g. ["3.06 TFlop/s"], ["21.4 GFlop/s"]. *)

val count : float -> string
(** Plain count with K/M/G suffixes. *)
