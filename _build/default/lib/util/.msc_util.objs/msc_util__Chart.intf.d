lib/util/chart.mli:
