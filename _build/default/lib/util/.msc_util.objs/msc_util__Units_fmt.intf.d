lib/util/units_fmt.mli:
