lib/util/regress.ml: Array Float Stats
