lib/util/regress.mli:
