lib/util/prng.mli:
