lib/util/units_fmt.ml: Float Printf
