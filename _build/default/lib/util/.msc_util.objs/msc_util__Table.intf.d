lib/util/table.mli:
