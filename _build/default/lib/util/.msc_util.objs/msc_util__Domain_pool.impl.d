lib/util/domain_pool.ml: Atomic Domain List
