(** Deterministic pseudo-random number generation (SplitMix64).

    All stochastic parts of the reproduction (grid initialisation, simulated
    annealing, property generators' seeds) draw from this generator so that
    every experiment is bit-reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Distinct seeds give independent
    streams. *)

val copy : t -> t
(** Independent clone with the same state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** Derive an independent child generator (advances the parent). *)
