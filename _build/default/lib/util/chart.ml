let bar_chart ?title ?(width = 50) ?(unit_label = "") entries =
  let buf = Buffer.create 1024 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  let label_width =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 entries
  in
  let vmax = List.fold_left (fun acc (_, v) -> max acc v) 0.0 entries in
  let vmax = if vmax <= 0.0 then 1.0 else vmax in
  let emit (label, v) =
    let v = max v 0.0 in
    let n = int_of_float (Float.round (v /. vmax *. float_of_int width)) in
    Buffer.add_string buf (Table.pad Table.Left label_width label);
    Buffer.add_string buf " |";
    Buffer.add_string buf (String.make n '#');
    Buffer.add_string buf (Printf.sprintf " %.3g%s\n" v unit_label)
  in
  List.iter emit entries;
  Buffer.contents buf

let series_glyphs = [| '#'; '*'; '+'; 'o'; 'x'; '@'; '%'; '=' |]

let grouped_bars ?title ?(width = 50) ~series_names entries =
  let buf = Buffer.create 1024 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  let nseries = List.length series_names in
  let pad_values vs =
    let len = List.length vs in
    if len >= nseries then vs else vs @ List.init (nseries - len) (fun _ -> 0.0)
  in
  let entries = List.map (fun (l, vs) -> (l, pad_values vs)) entries in
  List.iteri
    (fun i name ->
      Buffer.add_string buf
        (Printf.sprintf "  %c = %s\n" series_glyphs.(i mod Array.length series_glyphs) name))
    series_names;
  let label_width =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 entries
  in
  let vmax =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left max acc vs)
      0.0 entries
  in
  let vmax = if vmax <= 0.0 then 1.0 else vmax in
  let emit_bar label glyph v =
    let n = int_of_float (Float.round (max v 0.0 /. vmax *. float_of_int width)) in
    Buffer.add_string buf (Table.pad Table.Left label_width label);
    Buffer.add_string buf " |";
    Buffer.add_string buf (String.make n glyph);
    Buffer.add_string buf (Printf.sprintf " %.3g\n" v)
  in
  List.iter
    (fun (label, vs) ->
      List.iteri
        (fun i v ->
          let glyph = series_glyphs.(i mod Array.length series_glyphs) in
          emit_bar (if i = 0 then label else "") glyph v)
        vs)
    entries;
  Buffer.contents buf

let line_chart ?title ?(height = 16) ?(width = 64) ?(x_label = "x") ?(y_label = "y")
    series =
  let buf = Buffer.create 2048 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  let all_points = List.concat_map snd series in
  if all_points = [] then Buffer.add_string buf "(empty chart)\n"
  else begin
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let xmin = List.fold_left min (List.hd xs) xs
    and xmax = List.fold_left max (List.hd xs) xs
    and ymin = List.fold_left min (List.hd ys) ys
    and ymax = List.fold_left max (List.hd ys) ys in
    let xspan = if xmax -. xmin <= 0.0 then 1.0 else xmax -. xmin in
    let yspan = if ymax -. ymin <= 0.0 then 1.0 else ymax -. ymin in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si (_, points) ->
        let glyph = series_glyphs.(si mod Array.length series_glyphs) in
        List.iter
          (fun (x, y) ->
            let col =
              int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1))
            in
            let row =
              height - 1
              - int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1))
            in
            if row >= 0 && row < height && col >= 0 && col < width then
              grid.(row).(col) <- glyph)
          points)
      series;
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "  %c = %s\n" series_glyphs.(si mod Array.length series_glyphs) name))
      series;
    Buffer.add_string buf (Printf.sprintf "%s (max %.4g)\n" y_label ymax);
    Array.iter
      (fun row ->
        Buffer.add_string buf "  |";
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf "  +";
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "   %s: %.4g .. %.4g (%s min %.4g)\n" x_label xmin xmax y_label ymin)
  end;
  Buffer.contents buf
