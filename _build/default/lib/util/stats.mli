(** Descriptive statistics over float arrays. *)

val mean : float array -> float
(** Arithmetic mean. Requires a non-empty array. *)

val geomean : float array -> float
(** Geometric mean; all entries must be positive. *)

val variance : float array -> float
(** Population variance. *)

val stddev : float array -> float

val minimum : float array -> float
val maximum : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    closest ranks. Does not mutate its argument. *)

val median : float array -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit
