let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let geomean xs =
  assert (Array.length xs > 0);
  let acc = Array.fold_left (fun acc x -> assert (x > 0.0); acc +. log x) 0.0 xs in
  exp (acc /. float_of_int (Array.length xs))

let variance xs =
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
  /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let minimum xs = Array.fold_left min xs.(0) xs
let maximum xs = Array.fold_left max xs.(0) xs

let percentile xs p =
  assert (Array.length xs > 0 && p >= 0.0 && p <= 100.0);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.0

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let summarize xs =
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = minimum xs;
    max = maximum xs;
    median = median xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g" s.n
    s.mean s.stddev s.min s.median s.max
