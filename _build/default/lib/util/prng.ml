type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, trivially seedable. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t n =
  assert (n > 0);
  let mask = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int n))

let uniform t =
  (* 53 significant bits, uniform in [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t x = uniform t *. x

let gaussian t =
  let rec draw () =
    let u = uniform t in
    if u <= 0.0 then draw () else u
  in
  let u1 = draw () and u2 = uniform t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = next_int64 t }
