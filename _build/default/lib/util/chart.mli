(** Plain-text charts used to render the paper's figures in a terminal. *)

val bar_chart :
  ?title:string -> ?width:int -> ?unit_label:string ->
  (string * float) list -> string
(** Horizontal bar chart, one labelled bar per entry, scaled to the maximum
    value. Negative values are clamped to zero. *)

val grouped_bars :
  ?title:string -> ?width:int -> series_names:string list ->
  (string * float list) list -> string
(** Grouped horizontal bars: each entry carries one value per series (ragged
    groups are padded with zeros). *)

val line_chart :
  ?title:string -> ?height:int -> ?width:int -> ?x_label:string ->
  ?y_label:string -> (string * (float * float) list) list -> string
(** Multi-series scatter/line plot on a character grid; each series is drawn
    with its own glyph. *)
