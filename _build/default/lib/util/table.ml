type align = Left | Right

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else
    let fill = String.make (width - len) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?title ?aligns ~header rows =
  let ncols =
    List.fold_left (fun acc row -> max acc (List.length row)) (List.length header) rows
  in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let header = normalize header in
  let rows = List.map normalize rows in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> a
    | Some _ | None -> List.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth aligns i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  Array.iter
    (fun w ->
      Buffer.add_string buf (String.make w '-');
      Buffer.add_string buf "  ")
    widths;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?title ?aligns ~header rows =
  print_string (render ?title ?aligns ~header rows)

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let fmt_speedup x = Printf.sprintf "%.2fx" x
