type model = {
  intercept : float;
  coefficients : float array;
  r_squared : float;
}

let solve_linear_system a b =
  let n = Array.length b in
  if Array.length a <> n then invalid_arg "solve_linear_system: shape";
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "solve_linear_system: shape") a;
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivoting: bring the largest remaining entry to the diagonal. *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then pivot := row
    done;
    if Float.abs a.(!pivot).(col) < 1e-12 then
      invalid_arg "solve_linear_system: singular matrix";
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tb = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- tb
    end;
    for row = col + 1 to n - 1 do
      let factor = a.(row).(col) /. a.(col).(col) in
      if factor <> 0.0 then begin
        for k = col to n - 1 do
          a.(row).(k) <- a.(row).(k) -. (factor *. a.(col).(k))
        done;
        x.(row) <- x.(row) -. (factor *. x.(col))
      end
    done
  done;
  for row = n - 1 downto 0 do
    let acc = ref x.(row) in
    for k = row + 1 to n - 1 do
      acc := !acc -. (a.(row).(k) *. x.(k))
    done;
    x.(row) <- !acc /. a.(row).(row)
  done;
  x

let fit ~features ~targets =
  let m = Array.length features in
  if m = 0 || m <> Array.length targets then invalid_arg "Regress.fit: shape";
  let dim = Array.length features.(0) in
  Array.iter
    (fun row -> if Array.length row <> dim then invalid_arg "Regress.fit: ragged features")
    features;
  if m < dim + 1 then invalid_arg "Regress.fit: underdetermined";
  (* Augment with the intercept column and form X^T X / X^T y. *)
  let d = dim + 1 in
  let xtx = Array.make_matrix d d 0.0 in
  let xty = Array.make d 0.0 in
  let feat i j = if j = 0 then 1.0 else features.(i).(j - 1) in
  for i = 0 to m - 1 do
    for j = 0 to d - 1 do
      let fj = feat i j in
      xty.(j) <- xty.(j) +. (fj *. targets.(i));
      for k = 0 to d - 1 do
        xtx.(j).(k) <- xtx.(j).(k) +. (fj *. feat i k)
      done
    done
  done;
  (* Tiny ridge term keeps nearly-collinear schedule features solvable. *)
  for j = 0 to d - 1 do
    xtx.(j).(j) <- xtx.(j).(j) +. 1e-9
  done;
  let beta = solve_linear_system xtx xty in
  let intercept = beta.(0) in
  let coefficients = Array.sub beta 1 dim in
  let predict_row i =
    let acc = ref intercept in
    for j = 0 to dim - 1 do
      acc := !acc +. (coefficients.(j) *. features.(i).(j))
    done;
    !acc
  in
  let ybar = Stats.mean targets in
  let ss_tot = ref 0.0 and ss_res = ref 0.0 in
  for i = 0 to m - 1 do
    let resid = targets.(i) -. predict_row i in
    ss_res := !ss_res +. (resid *. resid);
    let dev = targets.(i) -. ybar in
    ss_tot := !ss_tot +. (dev *. dev)
  done;
  let r_squared = if !ss_tot = 0.0 then 1.0 else 1.0 -. (!ss_res /. !ss_tot) in
  { intercept; coefficients; r_squared }

let predict model xs =
  if Array.length xs <> Array.length model.coefficients then
    invalid_arg "Regress.predict: dimension mismatch";
  let acc = ref model.intercept in
  Array.iteri (fun j x -> acc := !acc +. (model.coefficients.(j) *. x)) xs;
  !acc
