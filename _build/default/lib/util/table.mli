(** Aligned ASCII table rendering for the experiment harness. *)

type align = Left | Right

val pad : align -> int -> string -> string
(** [pad align width s] pads [s] with spaces to [width]; longer strings are
    returned unchanged. *)

val render :
  ?title:string -> ?aligns:align list -> header:string list ->
  string list list -> string
(** [render ~header rows] lays the header and rows out in aligned columns with
    a separator rule. [aligns] defaults to left for the first column and right
    for the rest. Ragged rows are padded with empty cells. *)

val print :
  ?title:string -> ?aligns:align list -> header:string list ->
  string list list -> unit
(** [render] followed by [print_string]. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point with default 2 decimals. *)

val fmt_speedup : float -> string
(** e.g. [fmt_speedup 24.4 = "24.40x"]. *)
