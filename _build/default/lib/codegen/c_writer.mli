(** Minimal indented C source builder. *)

type t

val create : unit -> t
val line : t -> ('a, unit, string, unit) format4 -> 'a
(** Emit one line at the current indentation. *)

val blank : t -> unit
val block : t -> string -> (unit -> unit) -> unit
(** [block w header body] emits [header {], the body one level deeper,
    then [}]. *)

val block_trail : t -> string -> trailer:string -> (unit -> unit) -> unit
(** Like {!block} but closes with [} trailer] (e.g. ["} while (0);"]). *)

val raw : t -> string -> unit
(** Emit preformatted text verbatim (e.g. a pragma at column 0). *)

val contents : t -> string
