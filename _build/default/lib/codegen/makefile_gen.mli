(** Build-script generation (§3: "standard C codes as well as corresponding
    building scripts"). *)

val cpu : name:string -> string
(** Makefile for the plain-C target (gcc -O3). *)

val openmp : name:string -> string
(** Makefile for the Matrix / generic OpenMP target (gcc -O3 -fopenmp). *)

val athread : name:string -> string
(** Makefile for the Sunway target: sw5cc host/slave compilation and hybrid
    link, as used on TaihuLight. *)
