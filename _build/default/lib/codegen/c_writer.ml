type t = { buf : Buffer.t; mutable indent : int }

let create () = { buf = Buffer.create 4096; indent = 0 }

let emit t s =
  if String.length s > 0 then Buffer.add_string t.buf (String.make (2 * t.indent) ' ');
  Buffer.add_string t.buf s;
  Buffer.add_char t.buf '\n'

let line t fmt = Printf.ksprintf (emit t) fmt
let blank t = Buffer.add_char t.buf '\n'

let block t header body =
  emit t (header ^ " {");
  t.indent <- t.indent + 1;
  body ();
  t.indent <- t.indent - 1;
  emit t "}"

let block_trail t header ~trailer body =
  emit t (header ^ " {");
  t.indent <- t.indent + 1;
  body ();
  t.indent <- t.indent - 1;
  emit t ("} " ^ trailer)

let raw t s =
  Buffer.add_string t.buf s;
  if String.length s = 0 || s.[String.length s - 1] <> '\n' then
    Buffer.add_char t.buf '\n'

let contents t = Buffer.contents t.buf
