(** Sunway (SW26010) code generation: an athread master/slave pair.

    The master translation unit owns allocation, the sliding-window time loop
    and the per-step [athread_spawn]; the slave unit maps tile tasks to CPEs
    round-robin ([task_id % 64 == my_id], §4.3), stages each padded tile into
    scratchpad buffers with row-wise DMA gets, computes locally, and DMA-puts
    the tile back — the realisation of the [cache_read]/[cache_write]/
    [compute_at] primitives. *)

val generate_master :
  ?steps:int -> Msc_ir.Stencil.t -> Msc_schedule.Schedule.t -> string

val generate_slave : Msc_ir.Stencil.t -> Msc_schedule.Schedule.t -> string

val spm_bytes_needed : Msc_ir.Stencil.t -> Msc_schedule.Schedule.t -> int
(** Scratchpad footprint of the generated slave buffers: one padded read tile
    per input state plus the write tile. The Sunway backend refuses schedules
    whose footprint exceeds the 64 KB SPM. *)
