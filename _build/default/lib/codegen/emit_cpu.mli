(** C code generation for homogeneous targets: plain C (serial) and
    OpenMP-annotated C for the Matrix MT2000+ and commodity CPUs. *)

val generate :
  ?steps:int -> ?bc:Msc_exec.Bc.t -> omp:bool -> Msc_ir.Stencil.t ->
  Msc_schedule.Schedule.t -> string
(** One self-contained translation unit: prelude, init/report helpers, the
    scheduled [msc_step], and a [main] with the sliding-window time loop.
    With [omp], the schedule's parallel axis receives an
    [#pragma omp parallel for] annotation. [steps] is the default timestep
    count (overridable by [argv\[1\]]; default 10). *)
