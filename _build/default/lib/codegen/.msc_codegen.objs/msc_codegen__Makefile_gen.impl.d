lib/codegen/makefile_gen.ml: Printf
