lib/codegen/c_writer.ml: Buffer Printf String
