lib/codegen/emit_common.ml: Array C_writer Dtype Expr Kernel List Msc_exec Msc_ir Msc_schedule Printf Simplify Stencil String Tensor
