lib/codegen/codegen.mli: Msc_exec Msc_ir Msc_schedule
