lib/codegen/emit_athread.mli: Msc_ir Msc_schedule
