lib/codegen/emit_cpu.mli: Msc_exec Msc_ir Msc_schedule
