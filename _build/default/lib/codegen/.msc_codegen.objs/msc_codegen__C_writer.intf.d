lib/codegen/c_writer.mli:
