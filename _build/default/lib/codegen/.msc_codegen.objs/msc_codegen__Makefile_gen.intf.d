lib/codegen/makefile_gen.mli:
