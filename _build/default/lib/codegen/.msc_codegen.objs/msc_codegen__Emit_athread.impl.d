lib/codegen/emit_athread.ml: Array C_writer Dtype Emit_common Expr Kernel List Msc_ir Msc_schedule Printf Stencil String Tensor
