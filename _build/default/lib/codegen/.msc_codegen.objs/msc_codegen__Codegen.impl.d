lib/codegen/codegen.ml: Emit_athread Emit_common Emit_cpu Filename List Makefile_gen Msc_exec Msc_ir Msc_schedule Printf Stencil String Sys
