lib/codegen/emit_common.mli: C_writer Msc_exec Msc_ir Msc_schedule
