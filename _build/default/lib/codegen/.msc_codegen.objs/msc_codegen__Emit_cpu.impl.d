lib/codegen/emit_cpu.ml: C_writer Emit_common Msc_exec Msc_ir Printf Stencil
