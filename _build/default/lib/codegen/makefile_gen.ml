let cpu ~name =
  Printf.sprintf
    {|CC ?= gcc
CFLAGS ?= -O3 -std=c11 -Wall
LDLIBS = -lm

%s: %s.c
	$(CC) $(CFLAGS) -o $@ $< $(LDLIBS)

.PHONY: clean
clean:
	rm -f %s
|}
    name name name

let openmp ~name =
  Printf.sprintf
    {|CC ?= gcc
CFLAGS ?= -O3 -std=c11 -Wall -fopenmp
LDLIBS = -lm

%s: %s.c
	$(CC) $(CFLAGS) -o $@ $< $(LDLIBS)

.PHONY: clean
clean:
	rm -f %s
|}
    name name name

let athread ~name =
  Printf.sprintf
    {|# Sunway SW26010 hybrid build (TaihuLight toolchain)
HOST_CC = sw5cc -host
SLAVE_CC = sw5cc -slave
HYBRID_LD = sw5cc -hybrid
CFLAGS = -O3

%s: %s_master.o %s_slave.o
	$(HYBRID_LD) -o $@ $^ -lm_slave

%s_master.o: %s_master.c
	$(HOST_CC) $(CFLAGS) -c -o $@ $<

%s_slave.o: %s_slave.c
	$(SLAVE_CC) $(CFLAGS) -msimd -c -o $@ $<

.PHONY: clean
clean:
	rm -f %s *.o
|}
    name name name name name name name name
