open Msc_ir

type t = {
  stencil : Stencil.t;
  aux : (string * Grid.t) list;
  bc : Bc.t;
  mutable history : Grid.t list;  (* newest first; index 0 = t-1 *)
  mutable steps_done : int;
}

let default_init = Runtime.default_init

let create ?(init = default_init) ?(aux_init = Runtime.default_aux_init)
    ?(bc = Bc.Dirichlet 0.0) (st : Stencil.t) =
  let geometry = Grid.of_tensor st.Stencil.grid in
  let w = Stencil.time_window st in
  let history =
    List.init w (fun k ->
        let g = Grid.like geometry in
        Grid.fill g (init (k + 1));
        Bc.apply bc g;
        g)
  in
  let aux =
    List.map
      (fun (tensor : Tensor.t) ->
        let g = Grid.of_tensor tensor in
        Grid.fill_extended g (aux_init tensor.Tensor.name);
        (tensor.Tensor.name, g))
      (Runtime.aux_tensors_of st)
  in
  { stencil = st; aux; bc; history; steps_done = 0 }

let state t ~dt =
  if dt < 1 || dt > List.length t.history then
    invalid_arg "Reference.state: dt out of history";
  List.nth t.history (dt - 1)

let current t = state t ~dt:1
let steps_done t = t.steps_done

(* Evaluate one kernel at one point via the generic tree interpreter. *)
let eval_kernel_point t (k : Kernel.t) (src : Grid.t) coord =
  let load (a : Expr.access) =
    let c = Array.mapi (fun d v -> v + a.Expr.offsets.(d)) coord in
    if String.equal a.Expr.tensor k.Kernel.input.Tensor.name then Grid.get src c
    else
      match List.assoc_opt a.Expr.tensor t.aux with
      | Some g -> Grid.get g c
      | None ->
          invalid_arg (Printf.sprintf "Reference: unknown tensor %s" a.Expr.tensor)
  in
  let var name =
    let rec find d = function
      | [] -> invalid_arg (Printf.sprintf "Reference: unknown var %s" name)
      | v :: rest -> if String.equal v name then float_of_int coord.(d) else find (d + 1) rest
    in
    find 0 k.Kernel.index_vars
  in
  Expr.eval ~bindings:k.Kernel.bindings ~load ~var k.Kernel.expr

let rec eval_stencil_point t (e : Stencil.expr) coord =
  match e with
  | Stencil.Apply (k, dt) -> eval_kernel_point t k (state t ~dt) coord
  | Stencil.State dt -> Grid.get (state t ~dt) coord
  | Stencil.Scale (c, a) -> c *. eval_stencil_point t a coord
  | Stencil.Sum (a, b) -> eval_stencil_point t a coord +. eval_stencil_point t b coord
  | Stencil.Diff (a, b) -> eval_stencil_point t a coord -. eval_stencil_point t b coord

let step t =
  let geometry = Grid.of_tensor t.stencil.Stencil.grid in
  let out = Grid.like geometry in
  Grid.iter_interior out (fun coord ->
      Grid.set out coord (eval_stencil_point t t.stencil.Stencil.expr (Array.copy coord)));
  Bc.apply t.bc out;
  t.history <- out :: t.history;
  t.steps_done <- t.steps_done + 1

let run t n =
  for _ = 1 to n do
    step t
  done
