lib/exec/interp.mli: Grid Msc_ir
