lib/exec/grid.mli: Format Msc_ir Msc_util
