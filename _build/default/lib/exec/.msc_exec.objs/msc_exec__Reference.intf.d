lib/exec/reference.mli: Bc Grid Msc_ir
