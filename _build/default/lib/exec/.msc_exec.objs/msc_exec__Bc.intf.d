lib/exec/bc.mli: Format Grid
