lib/exec/runtime.mli: Bc Grid Msc_ir Msc_schedule Msc_util
