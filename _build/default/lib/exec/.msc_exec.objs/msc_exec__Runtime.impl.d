lib/exec/runtime.ml: Array Bc Grid Hashtbl Interp Kernel List Msc_ir Msc_schedule Msc_util Stencil String Tensor
