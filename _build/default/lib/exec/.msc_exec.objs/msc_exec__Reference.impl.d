lib/exec/reference.ml: Array Bc Expr Grid Kernel List Msc_ir Printf Runtime Stencil String Tensor
