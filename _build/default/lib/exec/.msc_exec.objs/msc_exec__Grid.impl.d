lib/exec/grid.ml: Array Bytes Float Format Fun Int64 Msc_ir Msc_util Printf String
