lib/exec/interp.ml: Array Expr Grid Kernel List Msc_ir Option Printf String Tensor
