lib/exec/verify.ml: Format Grid Msc_ir Reference Runtime
