lib/exec/verify.mli: Bc Format Grid Msc_ir Msc_schedule Msc_util
