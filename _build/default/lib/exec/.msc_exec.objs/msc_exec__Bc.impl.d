lib/exec/bc.ml: Array Format Grid
