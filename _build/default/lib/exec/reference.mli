(** Naive reference executor used as ground truth.

    Deliberately shares no code with {!Runtime}'s fast path: every point is
    evaluated through the generic expression-tree interpreter, the full state
    history is kept (no ring buffer), and there is no tiling or parallelism.
    Matching the optimized runtime against this is the §5.1 correctness
    check. *)

type t

val create :
  ?init:(int -> int array -> float) ->
  ?aux_init:(string -> int array -> float) ->
  ?bc:Bc.t ->
  Msc_ir.Stencil.t -> t
(** Same [init]/[aux_init] conventions as {!Runtime.create}. *)

val step : t -> unit
val run : t -> int -> unit
val current : t -> Grid.t
val state : t -> dt:int -> Grid.t
(** Any past state remains accessible (full history). *)

val steps_done : t -> int
