type t = Dirichlet of float | Periodic | Reflect

let mapped_coord t ~extent c =
  if c >= 0 && c < extent then Some c
  else
    match t with
    | Dirichlet _ -> None
    | Periodic -> Some (((c mod extent) + extent) mod extent)
    | Reflect -> Some (if c < 0 then -c - 1 else (2 * extent) - c - 1)

let apply ?low ?high t (g : Grid.t) =
  let nd = Grid.ndim g in
  let low = match low with Some a -> a | None -> Array.make nd true in
  let high = match high with Some a -> a | None -> Array.make nd true in
  if Array.length low <> nd || Array.length high <> nd then
    invalid_arg "Bc.apply: mask rank mismatch";
  (match t with
  | Reflect | Periodic ->
      Array.iteri
        (fun d h ->
          if h > g.Grid.shape.(d) then
            invalid_arg "Bc.apply: halo wider than the interior")
        g.Grid.halo
  | Dirichlet _ -> ());
  let coord = Array.make nd 0 in
  let mapped = Array.make nd 0 in
  let rec go d =
    if d = nd then begin
      (* Classify this cell's out-of-range dimensions. *)
      let physical_out = ref false and nonphysical_out = ref false in
      Array.iteri
        (fun k c ->
          if c < 0 then
            if low.(k) then physical_out := true else nonphysical_out := true
          else if c >= g.Grid.shape.(k) then
            if high.(k) then physical_out := true else nonphysical_out := true)
        coord;
      if !physical_out then begin
        match t with
        | Dirichlet v -> Grid.set g coord v
        | Periodic | Reflect ->
            let ok = ref true in
            Array.iteri
              (fun k c ->
                let is_physical_out =
                  (c < 0 && low.(k)) || (c >= g.Grid.shape.(k) && high.(k))
                in
                if is_physical_out then begin
                  match mapped_coord t ~extent:g.Grid.shape.(k) c with
                  | Some c' -> mapped.(k) <- c'
                  | None -> ok := false
                end
                else mapped.(k) <- c)
              coord;
            if !ok then Grid.set g coord (Grid.get g mapped)
      end
      else ignore !nonphysical_out
    end
    else
      for c = -g.Grid.halo.(d) to g.Grid.shape.(d) + g.Grid.halo.(d) - 1 do
        coord.(d) <- c;
        go (d + 1)
      done
  in
  go 0

let pp ppf = function
  | Dirichlet v -> Format.fprintf ppf "dirichlet(%g)" v
  | Periodic -> Format.pp_print_string ppf "periodic"
  | Reflect -> Format.pp_print_string ppf "reflect"

let equal a b = a = b
