module Sim = Msc_matrix.Sim

let time_multiplier ~benchmark =
  let h = Hashtbl.hash benchmark land 0xFFFF in
  1.02 +. (0.06 *. (float_of_int h /. 65535.0))

let simulate ?machine ?steps (st : Msc_ir.Stencil.t) schedule =
  let overrides =
    {
      Sim.default_overrides with
      Sim.time_multiplier = time_multiplier ~benchmark:st.Msc_ir.Stencil.name;
      Sim.fork_join_overhead_s = 8e-6;
    }
  in
  Sim.simulate ?machine ~overrides ?steps st schedule
