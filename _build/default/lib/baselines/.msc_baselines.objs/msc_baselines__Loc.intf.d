lib/baselines/loc.mli: Msc_ir Msc_schedule
