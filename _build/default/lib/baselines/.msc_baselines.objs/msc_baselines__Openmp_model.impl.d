lib/baselines/openmp_model.ml: Hashtbl Msc_ir Msc_matrix
