lib/baselines/openacc_model.ml: Array Dtype Kernel List Msc_ir Msc_schedule Msc_sunway Stencil Tensor
