lib/baselines/patus_model.ml: Array Msc_ir Msc_machine Msc_matrix Stencil Tensor
