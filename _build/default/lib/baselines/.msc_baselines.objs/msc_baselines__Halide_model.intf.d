lib/baselines/halide_model.mli: Msc_ir Msc_machine Msc_schedule
