lib/baselines/physis_model.ml: Array Dtype Float List Msc_comm Msc_ir Msc_machine Msc_matrix Msc_schedule Stencil Tensor
