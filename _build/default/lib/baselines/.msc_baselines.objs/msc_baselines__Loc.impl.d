lib/baselines/loc.ml: Array Buffer Expr Kernel List Msc_codegen Msc_frontend Msc_ir Msc_schedule Printf Stencil String Tensor
