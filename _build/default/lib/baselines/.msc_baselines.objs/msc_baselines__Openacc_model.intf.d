lib/baselines/openacc_model.mli: Msc_ir Msc_machine Msc_schedule Msc_sunway
