lib/baselines/openmp_model.mli: Msc_ir Msc_machine Msc_matrix Msc_schedule
