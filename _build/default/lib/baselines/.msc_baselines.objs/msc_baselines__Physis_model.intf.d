lib/baselines/physis_model.mli: Msc_ir Msc_machine
