lib/baselines/halide_model.ml: Kernel Msc_ir Msc_machine Msc_matrix Stencil
