open Msc_ir
module Schedule = Msc_schedule.Schedule
module Pretty = Msc_frontend.Pretty

type row = {
  benchmark : string;
  msc_sunway : int;
  openacc : int;
  msc_matrix : int;
  openmp : int;
}

let msc_loc (st : Stencil.t) ~schedule ~mpi_shape =
  let kernel_name =
    match Stencil.kernels st with k :: _ -> k.Kernel.name | [] -> "S"
  in
  let schedule_lines = Schedule.to_msc_lines schedule ~kernel_name in
  Pretty.loc (Pretty.program ~schedule_lines ~mpi_shape st)

(* Shared helpers for the hand-written baselines: both are rendered in the
   fully spelled-out style of manually tuned codes (per-tap accumulation,
   explicit coefficients), which is what makes their LoC grow with order. *)

let coefficient_lines line (st : Stencil.t) =
  List.iter
    (fun k ->
      List.iter
        (fun (name, v) ->
          line (Printf.sprintf "static const double %s = %.17g;" name v))
        k.Kernel.bindings)
    (Stencil.kernels st)

module Emit_common = Msc_codegen.Emit_common

(* One accumulation statement per tap — the unrolled style of hand-tuned
   codes, whose LoC grows with the stencil order. *)
let tap_statements (st : Stencil.t) ~vars ~array_of_dt =
  let terms = Emit_common.flatten_terms st in
  List.concat_map
    (fun (t : Emit_common.term) ->
      let array = array_of_dt t.Emit_common.dt in
      match t.Emit_common.kernel with
      | None ->
          [
            Printf.sprintf "acc += %.17g * %s[IDX(%s)];" t.Emit_common.scale array
              (String.concat ", " vars);
          ]
      | Some k -> (
          match Kernel.taps k with
          | Some taps ->
              List.map
                (fun (tap : Expr.tap) ->
                  let subs =
                    List.mapi
                      (fun d v ->
                        let off = tap.Expr.offsets.(d) in
                        if off = 0 then v else Printf.sprintf "%s + (%d)" v off)
                      vars
                  in
                  Printf.sprintf "acc += %.17g * %s[IDX(%s)];"
                    (t.Emit_common.scale *. tap.Expr.coeff)
                    array (String.concat ", " subs))
                taps
          | None ->
              [ Printf.sprintf "acc += %s_body(%s, ...);" k.Kernel.name array ]))
    terms

let dims_macros line (st : Stencil.t) =
  let grid = st.Stencil.grid in
  Array.iteri (fun d n -> line (Printf.sprintf "#define N%d %d" d n)) grid.Tensor.shape;
  Array.iteri (fun d h -> line (Printf.sprintf "#define H%d %d" d h)) grid.Tensor.halo

let vars_of (st : Stencil.t) =
  match Stencil.kernels st with
  | k :: _ -> k.Kernel.index_vars
  | [] -> [ "i" ]

let openacc_source (st : Stencil.t) =
  let buf = Buffer.create 4096 in
  let line s = Buffer.add_string buf (s ^ "\n") in
  let vars = vars_of st in
  let nd = List.length vars in
  line "/* hand-written OpenACC implementation for Sunway */";
  line "#include <stdio.h>";
  line "#include <stdlib.h>";
  line "#include <math.h>";
  dims_macros line st;
  line "#define IDX(...) /* padded row-major index */";
  coefficient_lines line st;
  let tw = Stencil.time_window st in
  let params =
    String.concat ", " (List.init tw (fun k -> Printf.sprintf "const double *s%d" (k + 1)))
  in
  line (Printf.sprintf "void step(%s, double *out) {" params);
  line "#pragma acc data copyin(s1[0:TOTAL]) copyout(out[0:TOTAL])";
  line "  {";
  line "#pragma acc parallel loop tile(8,8,32) gang vector";
  List.iteri
    (fun d v ->
      line
        (Printf.sprintf "%s  for (int %s = 0; %s < N%d; ++%s) {"
           (String.make (2 * d) ' ') v v d v))
    vars;
  line (Printf.sprintf "%s  double acc = 0.0;" (String.make (2 * nd) ' '));
  List.iter
    (fun stmt -> line (Printf.sprintf "%s  %s" (String.make (2 * nd) ' ') stmt))
    (tap_statements st ~vars ~array_of_dt:(Printf.sprintf "s%d"));
  line
    (Printf.sprintf "%s  out[IDX(%s)] = acc;" (String.make (2 * nd) ' ')
       (String.concat ", " vars));
  List.iteri
    (fun d _ -> line (Printf.sprintf "%s  }" (String.make (2 * (nd - 1 - d)) ' ')))
    vars;
  line "  }";
  line "}";
  line "int main(void) { /* allocation, init, time loop, report */ return 0; }";
  Buffer.contents buf

let openmp_source (st : Stencil.t) ~tile ~threads =
  let buf = Buffer.create 8192 in
  let line s = Buffer.add_string buf (s ^ "\n") in
  let vars = vars_of st in
  let nd = List.length vars in
  line "/* hand-written tiled OpenMP implementation for Matrix */";
  line "#include <stdio.h>";
  line "#include <stdlib.h>";
  line "#include <string.h>";
  line "#include <math.h>";
  line "#include <omp.h>";
  dims_macros line st;
  Array.iteri (fun d t -> line (Printf.sprintf "#define T%d %d" d t)) tile;
  line "#define IDX(...) /* padded row-major index */";
  coefficient_lines line st;
  let tw = Stencil.time_window st in
  let params =
    String.concat ", " (List.init tw (fun k -> Printf.sprintf "const double *s%d" (k + 1)))
  in
  line (Printf.sprintf "void step(%s, double *restrict out) {" params);
  line (Printf.sprintf "#pragma omp parallel for num_threads(%d) schedule(static)" threads);
  (* Outer tile loops, explicit remainder handling, inner loops. *)
  List.iteri
    (fun d _ ->
      line (Printf.sprintf "  for (int t%d = 0; t%d < (N%d + T%d - 1) / T%d; ++t%d) {" d d d d d d))
    vars;
  List.iteri
    (fun d _ ->
      line (Printf.sprintf "    const int lo%d = t%d * T%d;" d d d);
      line (Printf.sprintf "    const int hi%d = lo%d + T%d < N%d ? lo%d + T%d : N%d;" d d d d d d d))
    vars;
  List.iteri
    (fun d v -> line (Printf.sprintf "    for (int %s = lo%d; %s < hi%d; ++%s) {" v d v d v))
    vars;
  line "      double acc = 0.0;";
  List.iter
    (fun stmt -> line (Printf.sprintf "      %s" stmt))
    (tap_statements st ~vars ~array_of_dt:(Printf.sprintf "s%d"));
  line (Printf.sprintf "      out[IDX(%s)] = acc;" (String.concat ", " vars));
  List.iteri (fun _ _ -> line "    }") vars;
  List.iteri (fun _ _ -> line "  }") vars;
  ignore nd;
  line "}";
  line "static void init(double *g) { /* deterministic field */ }";
  line "static void report(const double *g) { /* checksum */ }";
  line "int main(int argc, char **argv) {";
  line "  /* window allocation, initial states, ring-buffer time loop */";
  line "  return 0;";
  line "}";
  Buffer.contents buf

let count text =
  List.length
    (List.filter
       (fun l -> String.length (String.trim l) > 0)
       (String.split_on_char '\n' text))

let row (st : Stencil.t) ~sunway_schedule ~matrix_schedule ~matrix_tile ~mpi_shape =
  {
    benchmark = st.Stencil.name;
    msc_sunway = msc_loc st ~schedule:sunway_schedule ~mpi_shape;
    openacc = count (openacc_source st);
    msc_matrix = msc_loc st ~schedule:matrix_schedule ~mpi_shape;
    openmp = count (openmp_source st ~tile:matrix_tile ~threads:32);
  }
