(** Hand-tuned OpenMP baseline on the Matrix processor (Figure 8).

    The paper finds manually optimized OpenMP essentially matches MSC on this
    homogeneous target (MSC averages 1.05x fp64 / 1.03x fp32): both use the
    same tiling and the pragmas expose the same parallelism. The residual gap
    comes from MSC's tighter index pre-computation; we model it as a small
    deterministic per-benchmark inefficiency. *)

val time_multiplier : benchmark:string -> float
(** In [1.02, 1.08], a stable hash of the benchmark name. *)

val simulate :
  ?machine:Msc_machine.Machine.t ->
  ?steps:int ->
  Msc_ir.Stencil.t ->
  Msc_schedule.Schedule.t ->
  (Msc_matrix.Sim.report, string) result
(** Same schedule as MSC (the baselines "adopt the same optimizations",
    §5.1), with the inefficiency multiplier applied. *)
