open Msc_ir
module Sim = Msc_matrix.Sim
module Machine = Msc_machine.Machine
module Schedule = Msc_schedule.Schedule
module Netmodel = Msc_comm.Netmodel
module Decomp = Msc_comm.Decomp

type config = { mpi_grid : int array; omp_threads : int; sub_grid : int array }

type comparison = {
  benchmark : string;
  config : config;
  msc_time_s : float;
  physis_time_s : float;
  speedup : float;
}

(* A rank owning [threads] of the node's cores gets that share of the
   socket's bandwidth and cache. *)
let rank_machine (m : Machine.t) ~threads =
  let share = float_of_int threads /. float_of_int m.Machine.compute_units in
  {
    m with
    Machine.compute_units = threads;
    Machine.mem_bandwidth_gbs = m.Machine.mem_bandwidth_gbs *. share;
  }

let local_time ?(overrides = Sim.default_overrides) ~machine ~threads
    (st : Stencil.t) =
  let kernel = List.hd (Stencil.kernels st) in
  let dims = st.Stencil.grid.Tensor.shape in
  let tile = Array.mapi (fun d t -> min t dims.(d)) (Schedule.default_tile kernel) in
  let sched = Schedule.cpu_canonical ~tile ~threads kernel in
  match
    Sim.simulate ~machine:(rank_machine machine ~threads) ~overrides ~steps:1 st sched
  with
  | Ok r -> r.Sim.time_per_step_s
  | Error msg -> invalid_arg ("Physis_model.local_time: " ^ msg)

(* Physis's CPU backend emits the GPU kernel structure as plain scalar C
   with per-access subscript evaluation: no vectorization and wasted
   bandwidth. This, on top of the RPC exchange, is what grows the gap with
   stencil order (§5.5). *)
let physis_kernel_overrides =
  {
    Sim.default_overrides with
    Sim.bandwidth_efficiency = 0.5;
    Sim.vector_efficiency = Some 0.03;
  }

let comm_bytes (st : Stencil.t) ~sub_grid =
  let nd = Array.length sub_grid in
  let radius = Stencil.radius st in
  let elem = Dtype.size_bytes st.Stencil.grid.Tensor.dtype in
  let volume = Array.fold_left ( * ) 1 sub_grid in
  let face_bytes =
    List.init nd (fun d -> volume / sub_grid.(d) * radius.(d) * elem)
    |> List.fold_left ( + ) 0
  in
  (2 * nd, float_of_int (2 * face_bytes) /. float_of_int (2 * nd))

let compare ?(machine = Machine.xeon_server) ~make_stencil ~global config =
  (* MSC: hybrid MPI+OpenMP, asynchronous exchange overlapped with compute. *)
  let msc_st = make_stencil config.sub_grid in
  let nranks = Array.fold_left ( * ) 1 config.mpi_grid in
  let msc_compute = local_time ~machine ~threads:config.omp_threads msc_st in
  let msgs, bytes = comm_bytes msc_st ~sub_grid:config.sub_grid in
  let msc_comm =
    Netmodel.exchange_time Netmodel.shared_memory ~nranks ~messages_per_rank:msgs
      ~bytes_per_message:bytes
  in
  let msc_time = Float.max msc_compute msc_comm in
  (* Physis: 28 single-threaded ranks, master-coordinated RPC exchange, no
     communication/computation overlap across the RPC barrier. *)
  let physis_ranks = machine.Machine.compute_units in
  let nd = Array.length global in
  let physis_shape = Decomp.auto_shape ~nranks:physis_ranks ~ndim:nd in
  let physis_sub =
    Array.mapi (fun d n -> (n + physis_shape.(d) - 1) / physis_shape.(d)) global
  in
  let physis_st = make_stencil physis_sub in
  let physis_compute =
    local_time ~overrides:physis_kernel_overrides ~machine ~threads:1 physis_st
  in
  let pmsgs, pbytes = comm_bytes physis_st ~sub_grid:physis_sub in
  let physis_comm =
    Netmodel.master_coordinated_time Netmodel.shared_memory ~nranks:physis_ranks
      ~messages_per_rank:pmsgs ~bytes_per_message:pbytes
  in
  let physis_time = physis_compute +. physis_comm in
  {
    benchmark = msc_st.Stencil.name;
    config;
    msc_time_s = msc_time;
    physis_time_s = physis_time;
    speedup = physis_time /. msc_time;
  }
