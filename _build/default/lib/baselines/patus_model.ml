open Msc_ir
module Sim = Msc_matrix.Sim
module Machine = Msc_machine.Machine

type comparison = {
  benchmark : string;
  msc_time_s : float;
  patus_time_s : float;
  speedup : float;
}

let bandwidth_efficiency (st : Stencil.t) =
  let nd = Array.length st.Stencil.grid.Tensor.shape in
  let radius = Array.fold_left max 0 (Stencil.radius st) in
  let box = Sim.is_box_shaped st in
  (* Unaligned 128-bit loads halve useful bandwidth at best; discrete 3-D
     star arms (one vector per plane touched) waste the most. *)
  match (nd, box) with
  | 2, true -> 0.22
  | 2, false -> 0.20
  | _, _ -> if radius <= 2 then 0.16 else 0.12

let compare ?(machine = Machine.xeon_server) (st : Stencil.t) schedule =
  let msc =
    match Sim.simulate ~machine ~steps:1 st schedule with
    | Ok r -> r.Sim.time_per_step_s
    | Error msg -> invalid_arg ("Patus_model.compare: " ^ msg)
  in
  let overrides =
    {
      Sim.default_overrides with
      Sim.bandwidth_efficiency = bandwidth_efficiency st;
      (* SSE only (no AVX/FMA): a quarter of the vector width. *)
      Sim.vector_efficiency = Some 0.1;
    }
  in
  let patus =
    match Sim.simulate ~machine ~overrides ~steps:1 st schedule with
    | Ok r -> r.Sim.time_per_step_s
    | Error msg -> invalid_arg ("Patus_model.compare: " ^ msg)
  in
  { benchmark = st.Stencil.name; msc_time_s = msc; patus_time_s = patus; speedup = patus /. msc }
