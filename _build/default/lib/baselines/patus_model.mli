(** Patus comparison on the CPU platform (Figure 13).

    The paper attributes Patus's deficit (MSC averages 5.94x) to aggressive
    SSE vectorization with unaligned loads that waste memory bandwidth on the
    already bandwidth-bound kernels, hurting most on wide 3-D star stencils
    with discrete accesses. We run the same Xeon cache simulation with the
    corresponding bandwidth derating. *)

type comparison = {
  benchmark : string;
  msc_time_s : float;
  patus_time_s : float;
  speedup : float;  (** MSC over Patus *)
}

val bandwidth_efficiency : Msc_ir.Stencil.t -> float
(** Effective-bandwidth fraction under unaligned SSE: lower for 3-D and for
    wide star arms. *)

val compare :
  ?machine:Msc_machine.Machine.t ->
  Msc_ir.Stencil.t ->
  Msc_schedule.Schedule.t ->
  comparison
