open Msc_ir
module Sim = Msc_matrix.Sim
module Machine = Msc_machine.Machine

type variant = Jit | Aot

type comparison = {
  benchmark : string;
  msc_time_s : float;
  halide_aot_time_s : float;
  halide_jit_time_s : float;
  speedup_aot_vs_jit : float;
  speedup_msc_vs_jit : float;
}

let msc_time ?(machine = Machine.xeon_server) (st : Stencil.t) schedule =
  match Sim.simulate ~machine ~steps:1 st schedule with
  | Ok r -> r.Sim.time_per_step_s
  | Error msg -> invalid_arg ("Halide_model.msc_time: " ^ msg)

(* Halide-AOT relative to MSC: a small win on low-order stencils (Halide's
   autoscheduler vectorizes the narrow kernels very well), a growing loss on
   high-order ones from per-access subscript-expression evaluation (MSC's
   tensor IR indexes directly; §5.5). *)
let aot_factor (st : Stencil.t) =
  let points =
    match Stencil.kernels st with k :: _ -> Kernel.points k | [] -> 1
  in
  if points <= 9 then 0.85 else 1.0 +. (0.006 *. float_of_int points)

let jit_compile_overhead_s = 1.8

let compare ?(machine = Machine.xeon_server) ?(steps = 60) (st : Stencil.t) schedule =
  let msc = msc_time ~machine st schedule in
  let aot = msc *. aot_factor st in
  let jit = aot +. (jit_compile_overhead_s /. float_of_int steps) in
  {
    benchmark = st.Stencil.name;
    msc_time_s = msc;
    halide_aot_time_s = aot;
    halide_jit_time_s = jit;
    speedup_aot_vs_jit = jit /. aot;
    speedup_msc_vs_jit = jit /. msc;
  }
