(** Lines-of-code productivity accounting (Table 6).

    The MSC side counts the DSL program a user writes (kernel + primitives +
    run statements). The baseline side counts the manually optimized codes:
    hand-written OpenACC for Sunway and hand-written OpenMP for Matrix, both
    rendered in the fully spelled-out style such codes are written in (per-tap
    statements, explicit buffer management), so the count grows with stencil
    order as in the paper. *)

type row = {
  benchmark : string;
  msc_sunway : int;
  openacc : int;
  msc_matrix : int;
  openmp : int;
}

val msc_loc :
  Msc_ir.Stencil.t -> schedule:Msc_schedule.Schedule.t -> mpi_shape:int array -> int
(** LoC of the MSC program (Listing 1 + Listing 2 style). *)

val openacc_source : Msc_ir.Stencil.t -> string
(** Hand-style OpenACC C for a Sunway CG. *)

val openmp_source : Msc_ir.Stencil.t -> tile:int array -> threads:int -> string
(** Hand-style tiled OpenMP C. *)

val row :
  Msc_ir.Stencil.t ->
  sunway_schedule:Msc_schedule.Schedule.t ->
  matrix_schedule:Msc_schedule.Schedule.t ->
  matrix_tile:int array ->
  mpi_shape:int array ->
  row
