(** Halide v12 comparison on the CPU platform (Figure 12).

    Mechanisms modelled, per the paper's analysis: JIT runs pay a
    compilation overhead each invocation (Halide-AOT removes it, averaging
    2.92x over JIT); Halide's generated code evaluates full subscript
    expressions per access, which costs more as the stencil order grows, so
    Halide-AOT beats MSC on small stencils (better autoscheduled
    vectorization) and loses on high-order ones. *)

type variant = Jit | Aot

type comparison = {
  benchmark : string;
  msc_time_s : float;  (** per step *)
  halide_aot_time_s : float;
  halide_jit_time_s : float;
  speedup_aot_vs_jit : float;
  speedup_msc_vs_jit : float;
}

val msc_time :
  ?machine:Msc_machine.Machine.t -> Msc_ir.Stencil.t -> Msc_schedule.Schedule.t ->
  float
(** MSC per-step time on the CPU platform (Matrix-style cache simulation on
    the Xeon descriptor). *)

val compare :
  ?machine:Msc_machine.Machine.t ->
  ?steps:int ->
  Msc_ir.Stencil.t ->
  Msc_schedule.Schedule.t ->
  comparison
(** [steps] amortises the JIT compile time (default 60; the per-step cost of
    JIT compilation is what produces the paper's 2.92x AOT average). *)
