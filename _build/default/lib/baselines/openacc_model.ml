open Msc_ir
module Schedule = Msc_schedule.Schedule
module Sim = Msc_sunway.Sim

let schedule (st : Stencil.t) =
  let grid = st.Stencil.grid in
  let dims = grid.Tensor.shape in
  let nd = Array.length dims in
  (* [acc tile] yields pencils: unit tiles on the leading dimensions, full
     rows on the contiguous one. *)
  let tile = Array.init nd (fun d -> if d = nd - 1 then dims.(d) else 1) in
  let kernel = List.hd (Stencil.kernels st) in
  let t = Schedule.tile Schedule.empty tile in
  let names = Schedule.dim_names nd in
  let order = List.map (fun n -> n ^ "o") names @ List.map (fun n -> n ^ "i") names in
  let t = Schedule.reorder t order in
  ignore kernel;
  Schedule.parallel ~kind:Schedule.Athread_cpes t "xo" 64

(* Software-cache hit behaviour of gld accesses under the OpenACC runtime:
   compact 2-D footprints cache well, wide 3-D stars thrash. Calibrated so
   the Figure 7 averages land near the paper's 24.4x / 20.7x. *)
let miss_rate (st : Stencil.t) =
  let nd = Array.length st.Stencil.grid.Tensor.shape in
  let radius = Array.fold_left max 0 (Stencil.radius st) in
  let box = Sim.is_box_shaped st in
  match (nd, box) with
  | 2, true -> if radius <= 2 then 0.30 else 0.07
  | 2, false -> 0.34
  | _, true -> 0.45
  | _, false -> if radius <= 2 then 0.48 else 0.19

let accesses_per_point (st : Stencil.t) =
  let rec go (e : Stencil.expr) =
    match e with
    | Stencil.Apply (k, _) -> Kernel.points k
    | Stencil.State _ -> 1
    | Stencil.Scale (_, a) -> go a
    | Stencil.Sum (a, b) | Stencil.Diff (a, b) -> go a + go b
  in
  go st.Stencil.expr + 1 (* the store *)

let spm_hit_s = 4e-9
let gld_miss_s = 170e-9

(* The MPE stages the OpenACC data regions (acc copyin/copyout) itself each
   step, without the CPEs' aggregate DMA bandwidth. *)
let mpe_staging_gbs = 5.0

let overrides (st : Stencil.t) =
  let m = miss_rate st in
  (* fp32 elements double the software cache's reach, roughly halving the
     stall cost per access (the paper's fp32 gap is accordingly smaller:
     20.7x vs 24.4x). *)
  let dtype_factor =
    match st.Stencil.grid.Tensor.dtype with
    | Dtype.F32 -> 0.42
    | Dtype.F64 | Dtype.I32 -> 1.0
  in
  let per_access =
    (((1.0 -. m) *. spm_hit_s) +. (m *. gld_miss_s)) *. dtype_factor
  in
  let grid = st.Stencil.grid in
  let grid_bytes =
    float_of_int (Tensor.elems grid * Dtype.size_bytes grid.Tensor.dtype)
  in
  let tw = Stencil.time_window st in
  let staging_s_per_point =
    (* copyin of each input state + copyout of the result, every step. *)
    float_of_int (tw + 1) *. grid_bytes /. (mpe_staging_gbs *. 1e9)
    /. float_of_int (Tensor.elems grid)
    (* the stall model below is divided by the CPE count, the MPE is one
       core: pre-multiply so the division cancels *)
    *. 64.0
  in
  {
    Sim.bandwidth_efficiency = 0.6;
    (* Scalar loop body: no SIMD, no FMA pairing. *)
    Sim.vector_efficiency = Some 0.08;
    Sim.extra_latency_per_point_s =
      (float_of_int (accesses_per_point st) *. per_access) +. staging_s_per_point;
    Sim.spawn_overhead_s = 25e-6;
    Sim.tile_reuse = false;
    Sim.double_buffer = false;
    Sim.bypass_spm = true;
  }

let simulate ?machine ?steps (st : Stencil.t) =
  Sim.simulate ?machine ~overrides:(overrides st) ?steps st (schedule st)
