(** OpenACC-on-Sunway baseline (Figure 7).

    The paper's baseline uses the Sunway OpenACC compiler's directives
    ([acc copyin/copyout], [acc tile], [acc parallel]), which lack the
    fine-grained SPM/DMA management of MSC: no scratchpad retention of tiles,
    software-cached global loads for neighbours, and no vectorization of the
    stencil body. We run the *same* Sunway simulator with the corresponding
    degradations: pencil-shaped tiles (directive-level loop tiling), no tile
    reuse, SPM bypass with per-access software-cache stalls, and scalar
    compute. Stall hit-rates are calibrated so the fleet-average speedup
    matches the paper's reported 24.4x (fp64) / 20.7x (fp32). *)

val schedule : Msc_ir.Stencil.t -> Msc_schedule.Schedule.t
(** The directive-equivalent schedule: row-pencil tiles, natural order,
    64-way parallelism. *)

val overrides : Msc_ir.Stencil.t -> Msc_sunway.Sim.overrides

val simulate :
  ?machine:Msc_machine.Machine.t -> ?steps:int -> Msc_ir.Stencil.t ->
  (Msc_sunway.Sim.report, string) result
