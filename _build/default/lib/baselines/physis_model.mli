(** Physis comparison on the CPU platform (Figure 14, Table 8 configs).

    Physis runs MPI-only (no OpenMP hybrid) and its halo exchange goes
    through an RPC runtime whose master process coordinates every transfer —
    the serialisation the paper identifies as the bottleneck (§5.5). MSC runs
    the same process/thread budget with its asynchronous exchange, fully
    overlapped with computation. *)

type config = {
  mpi_grid : int array;  (** MSC's process grid (Table 8) *)
  omp_threads : int;  (** MSC's threads per process *)
  sub_grid : int array;  (** MSC's per-rank extents *)
}

type comparison = {
  benchmark : string;
  config : config;
  msc_time_s : float;  (** per step *)
  physis_time_s : float;
  speedup : float;
}

val compare :
  ?machine:Msc_machine.Machine.t ->
  make_stencil:(int array -> Msc_ir.Stencil.t) ->
  global:int array ->
  config ->
  comparison
(** [make_stencil] builds the benchmark on arbitrary extents. Physis always
    uses [28] single-threaded ranks over [global] (the paper's setup). *)
