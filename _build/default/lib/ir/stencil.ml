type expr =
  | Apply of Kernel.t * int
  | State of int
  | Scale of float * expr
  | Sum of expr * expr
  | Diff of expr * expr

type t = { name : string; grid : Tensor.t; expr : expr }

let rec fold_expr acc fn e =
  let acc = fn acc e in
  match e with
  | Apply _ | State _ -> acc
  | Scale (_, a) -> fold_expr acc fn a
  | Sum (a, b) | Diff (a, b) -> fold_expr (fold_expr acc fn a) fn b

let time_offsets t =
  List.sort_uniq compare
    (fold_expr [] (fun acc e ->
         match e with
         | Apply (_, dt) | State dt -> dt :: acc
         | Scale _ | Sum _ | Diff _ -> acc)
       t.expr)

let time_window t = List.fold_left max 1 (time_offsets t)

let kernels t =
  let seen = ref [] in
  let (_ : unit list) =
    fold_expr [] (fun acc e ->
        (match e with
        | Apply (k, _) ->
            if not (List.exists (fun k' -> String.equal k'.Kernel.name k.Kernel.name) !seen)
            then seen := !seen @ [ k ]
        | State _ | Scale _ | Sum _ | Diff _ -> ());
        acc)
      t.expr
  in
  !seen

let validate t =
  List.iter
    (fun dt ->
      if dt < 1 then invalid_arg (Printf.sprintf "Stencil %s: time offset %d < 1" t.name dt))
    (time_offsets t);
  List.iter
    (fun k ->
      if not (String.equal k.Kernel.input.Tensor.name t.grid.Tensor.name) then
        invalid_arg
          (Printf.sprintf "Stencil %s: kernel %s reads %s, not the stencil grid %s"
             t.name k.Kernel.name k.Kernel.input.Tensor.name t.grid.Tensor.name))
    (kernels t);
  if t.grid.Tensor.time_window < time_window t then
    invalid_arg
      (Printf.sprintf
         "Stencil %s: needs %d past states but grid %s declares a time window of %d"
         t.name (time_window t) t.grid.Tensor.name t.grid.Tensor.time_window);
  t

let make ~name ~grid expr = validate { name; grid; expr }

let of_kernel k =
  make ~name:k.Kernel.name ~grid:k.Kernel.input (Apply (k, 1))

let flops_per_point t =
  fold_expr 0
    (fun acc e ->
      match e with
      | Apply (k, _) -> acc + Kernel.flops_per_point k
      | State _ -> acc
      | Scale _ -> acc + 1
      | Sum _ | Diff _ -> acc + 1)
    t.expr

let read_bytes_per_point t =
  (* Distinct (time offset, spatial offset) pairs. *)
  let reads = ref [] in
  let add key = if not (List.mem key !reads) then reads := key :: !reads in
  let (_ : unit list) =
    fold_expr [] (fun acc e ->
        (match e with
        | Apply (k, dt) ->
            List.iter
              (fun (a : Expr.access) -> add (dt, Array.to_list a.offsets))
              (Expr.distinct_accesses k.Kernel.expr)
        | State dt -> add (dt, List.init (Tensor.ndim t.grid) (fun _ -> 0))
        | Scale _ | Sum _ | Diff _ -> ());
        acc)
      t.expr
  in
  List.length !reads * Dtype.size_bytes t.grid.Tensor.dtype

let write_bytes_per_point t = Dtype.size_bytes t.grid.Tensor.dtype

let radius t =
  let rank = Tensor.ndim t.grid in
  let r = Array.make rank 0 in
  List.iter
    (fun k ->
      let rk = Kernel.radius k in
      Array.iteri (fun d v -> r.(d) <- max r.(d) v) rk)
    (kernels t);
  r

let validate_halo t =
  let r = radius t in
  Array.iteri
    (fun d v ->
      if v > t.grid.Tensor.halo.(d) then
        invalid_arg
          (Printf.sprintf "Stencil %s: radius %d exceeds halo %d on dim %d" t.name v
             t.grid.Tensor.halo.(d) d))
    r

let rec pp_expr ppf = function
  | Apply (k, dt) -> Format.fprintf ppf "%s[t-%d]" k.Kernel.name dt
  | State dt -> Format.fprintf ppf "U[t-%d]" dt
  | Scale (c, e) -> Format.fprintf ppf "%g*(%a)" c pp_expr e
  | Sum (a, b) -> Format.fprintf ppf "(%a + %a)" pp_expr a pp_expr b
  | Diff (a, b) -> Format.fprintf ppf "(%a - %a)" pp_expr a pp_expr b

let pp ppf t =
  Format.fprintf ppf "Stencil %s on %s: Res[t] << %a" t.name t.grid.Tensor.name
    pp_expr t.expr
