(** Nested-loop IR (paper Table 2, [Axis]).

    An axis records its identifier, its order in the nest (0 = outermost),
    and its iteration bounds/stride. The schedule primitives split, reorder
    and annotate axes. *)

type parallel_mode =
  | Serial
  | Threads of int  (** OpenMP-style multi-threading over this axis *)
  | Cpe_tasks of int  (** athread-style task-to-CPE round-robin mapping *)

type t = {
  id_var : string;
  order : int;
  start : int;
  stop : int;  (** exclusive *)
  stride : int;
  parallel : parallel_mode;
}

val make : ?start:int -> ?stride:int -> string -> stop:int -> order:int -> t
val extent : t -> int
(** Number of iterations: [ceil((stop - start) / stride)]. *)

val trip_count : t list -> int
(** Product of extents of a loop nest. *)

val with_order : t -> int -> t
val pp : Format.formatter -> t -> unit
