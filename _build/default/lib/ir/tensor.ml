type kind = Sp | Te

type t = {
  name : string;
  kind : kind;
  dtype : Dtype.t;
  shape : int array;
  halo : int array;
  time_window : int;
}

let validate t =
  if Array.length t.shape = 0 then invalid_arg "Tensor: empty shape";
  Array.iter (fun d -> if d <= 0 then invalid_arg "Tensor: non-positive extent") t.shape;
  if Array.length t.halo <> Array.length t.shape then
    invalid_arg "Tensor: halo rank mismatch";
  Array.iter (fun h -> if h < 0 then invalid_arg "Tensor: negative halo") t.halo;
  if t.time_window < 1 then invalid_arg "Tensor: time window must be >= 1";
  t

let sp ?(time_window = 1) ?halo name dtype shape =
  let halo =
    match halo with Some h -> h | None -> Array.make (Array.length shape) 1
  in
  validate { name; kind = Sp; dtype; shape; halo; time_window }

let te name dtype shape =
  validate
    {
      name;
      kind = Te;
      dtype;
      shape;
      halo = Array.make (Array.length shape) 0;
      time_window = 1;
    }

let ndim t = Array.length t.shape
let elems t = Array.fold_left ( * ) 1 t.shape

let padded_shape t = Array.mapi (fun d n -> n + (2 * t.halo.(d))) t.shape
let padded_elems t = Array.fold_left ( * ) 1 (padded_shape t)

let footprint_bytes t = padded_elems t * Dtype.size_bytes t.dtype * t.time_window

let rename t name = { t with name }

let pp ppf t =
  let kind = match t.kind with Sp -> "SpNode" | Te -> "TeNode" in
  Format.fprintf ppf "%s %s<%a>[%s] halo=[%s] tw=%d" kind t.name Dtype.pp t.dtype
    (String.concat "," (Array.to_list (Array.map string_of_int t.shape)))
    (String.concat "," (Array.to_list (Array.map string_of_int t.halo)))
    t.time_window
