(** Tensor IR (paper Table 2): [SpNode] carries a halo region and a time
    window; [TeNode] is a compiler temporary without halo. *)

type kind =
  | Sp  (** user-visible tensor with halo region (SpNode) *)
  | Te  (** compiler temporary, no halo (TeNode) *)

type t = {
  name : string;
  kind : kind;
  dtype : Dtype.t;
  shape : int array;  (** interior extents, outermost dimension first *)
  halo : int array;  (** halo width per dimension (all zeros for [Te]) *)
  time_window : int;  (** number of past states kept (>= 1 for Sp) *)
}

val sp :
  ?time_window:int -> ?halo:int array -> string -> Dtype.t -> int array -> t
(** [sp name dtype shape] builds an SpNode. [halo] defaults to width 1 in each
    dimension; [time_window] defaults to 1.
    @raise Invalid_argument on empty shape, non-positive extents, negative
    halo, or halo rank mismatch. *)

val te : string -> Dtype.t -> int array -> t
(** Compiler temporary: zero halo, time window 1. *)

val ndim : t -> int
val elems : t -> int
(** Number of interior points. *)

val padded_shape : t -> int array
(** Shape including halo on both sides. *)

val padded_elems : t -> int
val footprint_bytes : t -> int
(** Bytes for all retained time states, halo included. *)

val rename : t -> string -> t
val pp : Format.formatter -> t -> unit
