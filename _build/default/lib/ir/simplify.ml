let constant = function
  | Expr.Fconst x -> Some x
  | Expr.Iconst n -> Some (float_of_int n)
  | Expr.Param _ | Expr.Var _ | Expr.Access _ | Expr.Unop _ | Expr.Binop _
  | Expr.Call _ ->
      None

let is_zero e = constant e = Some 0.0
let is_one e = constant e = Some 1.0

let fold_binop op a b =
  match op with
  | Expr.Add -> a +. b
  | Expr.Sub -> a -. b
  | Expr.Mul -> a *. b
  | Expr.Div -> a /. b
  | Expr.Min -> Float.min a b
  | Expr.Max -> Float.max a b

let fold_unop op a =
  match op with
  | Expr.Neg -> -.a
  | Expr.Abs -> Float.abs a
  | Expr.Sqrt -> sqrt a
  | Expr.Exp -> exp a
  | Expr.Sin -> sin a
  | Expr.Cos -> cos a

(* Integer +,-,* stay integers so the emitted C keeps integer literals. *)
let fold_int_binop op a b =
  match op with
  | Expr.Add -> Some (a + b)
  | Expr.Sub -> Some (a - b)
  | Expr.Mul -> Some (a * b)
  | Expr.Div | Expr.Min | Expr.Max -> None

let rec expr (e : Expr.t) =
  match e with
  | Expr.Fconst _ | Expr.Iconst _ | Expr.Param _ | Expr.Var _ | Expr.Access _ -> e
  | Expr.Call (name, args) -> Expr.Call (name, List.map expr args)
  | Expr.Unop (op, a) -> (
      let a = expr a in
      match (op, a) with
      | Expr.Neg, Expr.Unop (Expr.Neg, inner) -> inner
      | _, _ -> (
          match constant a with
          | Some c -> Expr.Fconst (fold_unop op c)
          | None -> Expr.Unop (op, a)))
  | Expr.Binop (op, a, b) -> (
      let a = expr a and b = expr b in
      match (a, b) with
      | Expr.Iconst x, Expr.Iconst y when fold_int_binop op x y <> None ->
          Expr.Iconst (Option.get (fold_int_binop op x y))
      | _ -> (
          match (constant a, constant b) with
          | Some x, Some y -> Expr.Fconst (fold_binop op x y)
          | _ -> (
              match op with
              | Expr.Add when is_zero a -> b
              | Expr.Add when is_zero b -> a
              | Expr.Sub when is_zero b -> a
              | Expr.Mul when is_zero a || is_zero b -> Expr.Fconst 0.0
              | Expr.Mul when is_one a -> b
              | Expr.Mul when is_one b -> a
              | Expr.Div when is_zero a -> Expr.Fconst 0.0
              | Expr.Div when is_one b -> a
              | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Min | Expr.Max ->
                  Expr.Binop (op, a, b))))
