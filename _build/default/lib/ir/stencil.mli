(** Stencil IR: a computation with multiple time dependencies (paper §4.1).

    Where a {!Kernel} is one spatial sweep, a stencil combines kernel
    applications at several *previous* timesteps, e.g. the paper's

    {[ Stencil st((i,j), Res[t] << S_3d7pt[t-1] + S_3d7pt[t-2]) ]}

    is [Sum (Apply (s_3d7pt, 1), Apply (s_3d7pt, 2))]. The [State] form gives
    direct (identity) access to a past state, which second-order wave
    equations need ([u[t] = 2 u[t-1] - u[t-2] + c^2 lap(u[t-1])]). *)

type expr =
  | Apply of Kernel.t * int  (** kernel applied to the state at [t - k], k >= 1 *)
  | State of int  (** the raw state at [t - k], k >= 1 *)
  | Scale of float * expr
  | Sum of expr * expr
  | Diff of expr * expr

type t = {
  name : string;
  grid : Tensor.t;  (** the evolving SpNode *)
  expr : expr;
}

val make : name:string -> grid:Tensor.t -> expr -> t
(** @raise Invalid_argument if any time offset is < 1, if a kernel's input
    tensor differs from [grid], or if the grid's declared time window is
    smaller than the maximum dependency depth. *)

val of_kernel : Kernel.t -> t
(** The common single-dependency case: [grid[t] = K(grid[t-1])]. *)

val time_window : t -> int
(** Maximum [k] over all dependencies: the number of past states that must be
    kept live (the paper's sliding-time-window width minus one). *)

val kernels : t -> Kernel.t list
(** Distinct kernels, in first-use order. *)

val flops_per_point : t -> int
(** Total arithmetic per output point: kernel flops plus combination
    arithmetic (Table 4 "Ops" column). *)

val read_bytes_per_point : t -> int
(** Distinct (state, point) reads × element size (Table 4 "Read"). *)

val write_bytes_per_point : t -> int
val radius : t -> int array
val validate_halo : t -> unit
(** @raise Invalid_argument if the stencil radius exceeds the grid halo. *)

val pp : Format.formatter -> t -> unit
