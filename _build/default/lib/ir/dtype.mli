(** Scalar datatypes supported by the MSC DSL (§4.2: i32, f32, f64). *)

type t = I32 | F32 | F64

val size_bytes : t -> int
(** Storage size of one element. *)

val to_c : t -> string
(** C type name used by the AOT code generator. *)

val to_string : t -> string
(** DSL-level name: ["i32"], ["f32"], ["f64"]. *)

val tolerance : t -> float
(** Paper §5.1 correctness threshold on relative error: 1e-5 for fp32,
    1e-10 for fp64 (and 0 for exact integer data). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
