(** Kernel IR: one basic stencil sweep (paper §4.1, e.g. a 3-D Laplacian).

    A kernel reads one input grid and produces the value of each output point
    from a neighbourhood of the corresponding input point. Kernels carry no
    temporal information; time dependencies live in {!Stencil}. *)

type t = {
  name : string;
  input : Tensor.t;  (** the SpNode the kernel reads *)
  aux : Tensor.t list;
      (** additional read-only grids — typically coefficient grids, the
          multi-grid case the paper's §5.6 discussion motivates with WRF and
          POP2 kernels. They must share the input's shape and halo so one
          index space covers all grids. *)
  index_vars : string list;  (** loop variables, outermost first, e.g. k,j,i *)
  expr : Expr.t;  (** RHS producing the output point *)
  bindings : (string * float) list;  (** coefficient values for [Expr.Param]s *)
}

val make :
  ?bindings:(string * float) list ->
  ?aux:Tensor.t list ->
  name:string -> input:Tensor.t -> index_vars:string list -> Expr.t -> t
(** Builds and validates a kernel.
    @raise Invalid_argument if [index_vars] rank differs from the input
    tensor's, if the expression reads a tensor that is neither [input] nor in
    [aux], if an aux tensor's shape/halo differ from the input's, if an
    access rank mismatches, if an offset exceeds the declared halo, or if a
    parameter is unbound. *)

val aux_tensor : t -> string -> Tensor.t option
(** Look up an aux grid by name. *)

val is_multi_grid : t -> bool
(** Does the expression actually read any aux tensor? *)

val ndim : t -> int
val radius : t -> int array
(** Per-dimension maximum absolute access offset. *)

val points : t -> int
(** Number of distinct points read per output point across all grids (the
    "Npt" of names like 3d7pt for single-grid kernels). *)

val flops_per_point : t -> int
val read_bytes_per_point : t -> int
(** [points * sizeof dtype]: the Read column of Table 4. *)

val write_bytes_per_point : t -> int
val taps : t -> Expr.tap list option
(** Linear-combination form, if the kernel is linear over the input grid
    alone (constant coefficients folded through bindings). Multi-grid kernels
    return [None]; the interpreter uses its bilinear fast path or the
    expression tree instead. *)

val rename : t -> string -> t
val pp : Format.formatter -> t -> unit
