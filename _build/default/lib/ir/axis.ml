type parallel_mode = Serial | Threads of int | Cpe_tasks of int

type t = {
  id_var : string;
  order : int;
  start : int;
  stop : int;
  stride : int;
  parallel : parallel_mode;
}

let make ?(start = 0) ?(stride = 1) id_var ~stop ~order =
  assert (stride > 0);
  { id_var; order; start; stop; stride; parallel = Serial }

let extent t =
  if t.stop <= t.start then 0 else ((t.stop - t.start + t.stride - 1) / t.stride)

let trip_count axes = List.fold_left (fun acc ax -> acc * extent ax) 1 axes

let with_order t order = { t with order }

let pp ppf t =
  let mode =
    match t.parallel with
    | Serial -> ""
    | Threads n -> Printf.sprintf " parallel(threads=%d)" n
    | Cpe_tasks n -> Printf.sprintf " parallel(cpes=%d)" n
  in
  Format.fprintf ppf "for %s in [%d,%d) step %d%s" t.id_var t.start t.stop t.stride
    mode
