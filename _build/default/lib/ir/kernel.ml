type t = {
  name : string;
  input : Tensor.t;
  aux : Tensor.t list;
  index_vars : string list;
  expr : Expr.t;
  bindings : (string * float) list;
}

let tensor_of t name =
  if String.equal name t.input.Tensor.name then Some t.input
  else List.find_opt (fun (a : Tensor.t) -> String.equal a.Tensor.name name) t.aux

let validate t =
  let rank = Tensor.ndim t.input in
  if List.length t.index_vars <> rank then
    invalid_arg
      (Printf.sprintf "Kernel %s: %d index vars for rank-%d tensor" t.name
         (List.length t.index_vars) rank);
  List.iter
    (fun (aux : Tensor.t) ->
      if aux.Tensor.shape <> t.input.Tensor.shape
         || aux.Tensor.halo <> t.input.Tensor.halo
      then
        invalid_arg
          (Printf.sprintf
             "Kernel %s: aux tensor %s must share the input's shape and halo"
             t.name aux.Tensor.name))
    t.aux;
  List.iter
    (fun (a : Expr.access) ->
      match tensor_of t a.tensor with
      | None ->
          invalid_arg
            (Printf.sprintf "Kernel %s: reads tensor %s (input is %s%s)" t.name
               a.tensor t.input.Tensor.name
               (match t.aux with
               | [] -> ""
               | aux ->
                   "; aux: "
                   ^ String.concat ","
                       (List.map (fun (x : Tensor.t) -> x.Tensor.name) aux)))
      | Some tensor ->
          if Array.length a.offsets <> rank then
            invalid_arg (Printf.sprintf "Kernel %s: access rank mismatch" t.name);
          Array.iteri
            (fun d off ->
              if abs off > tensor.Tensor.halo.(d) then
                invalid_arg
                  (Printf.sprintf
                     "Kernel %s: offset %d on dim %d exceeds halo width %d of %s"
                     t.name off d tensor.Tensor.halo.(d) tensor.Tensor.name))
            a.offsets)
    (Expr.accesses t.expr);
  List.iter
    (fun name ->
      if not (List.mem_assoc name t.bindings) then
        invalid_arg (Printf.sprintf "Kernel %s: unbound parameter %s" t.name name))
    (Expr.params t.expr);
  t

let make ?(bindings = []) ?(aux = []) ~name ~input ~index_vars expr =
  validate { name; input; aux; index_vars; expr; bindings }

let aux_tensor t name =
  List.find_opt (fun (a : Tensor.t) -> String.equal a.Tensor.name name) t.aux

let is_multi_grid t =
  List.exists
    (fun (a : Expr.access) -> not (String.equal a.Expr.tensor t.input.Tensor.name))
    (Expr.accesses t.expr)

let ndim t = Tensor.ndim t.input

let radius t =
  let rank = ndim t in
  let r = Array.make rank 0 in
  List.iter
    (fun (a : Expr.access) ->
      Array.iteri (fun d off -> r.(d) <- max r.(d) (abs off)) a.offsets)
    (Expr.accesses t.expr);
  r

let points t = List.length (Expr.distinct_accesses t.expr)
let flops_per_point t = Expr.flops t.expr

let read_bytes_per_point t = points t * Dtype.size_bytes t.input.Tensor.dtype
let write_bytes_per_point t = Dtype.size_bytes t.input.Tensor.dtype

let taps t =
  if is_multi_grid t then None else Expr.linear_taps ~bindings:t.bindings t.expr

let rename t name = { t with name }

let pp ppf t =
  Format.fprintf ppf "Kernel %s (%s) over %s:@ %a" t.name
    (String.concat "," t.index_vars)
    t.input.Tensor.name Expr.pp t.expr
