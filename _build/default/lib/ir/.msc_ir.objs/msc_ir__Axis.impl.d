lib/ir/axis.ml: Format List Printf
