lib/ir/tensor.mli: Dtype Format
