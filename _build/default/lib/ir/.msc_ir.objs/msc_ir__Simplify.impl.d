lib/ir/simplify.ml: Expr Float List Option
