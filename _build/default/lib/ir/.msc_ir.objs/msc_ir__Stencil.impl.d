lib/ir/stencil.ml: Array Dtype Expr Format Kernel List Printf String Tensor
