lib/ir/expr.ml: Array Buffer Float Format Int List Printf Stdlib String
