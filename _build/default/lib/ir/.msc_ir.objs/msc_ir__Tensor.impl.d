lib/ir/tensor.ml: Array Dtype Format String
