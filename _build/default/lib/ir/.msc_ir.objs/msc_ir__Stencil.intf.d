lib/ir/stencil.mli: Format Kernel Tensor
