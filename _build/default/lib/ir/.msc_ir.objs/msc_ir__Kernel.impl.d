lib/ir/kernel.ml: Array Dtype Expr Format List Printf String Tensor
