lib/ir/simplify.mli: Expr
