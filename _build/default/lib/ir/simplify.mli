(** Expression simplification: constant folding and algebraic identities.

    Runs after parameter substitution in the code generator, shrinking the
    emitted C (folded coefficients, dropped [* 1.0] / [+ 0.0] terms). The
    transformation preserves IEEE semantics for finite values; the one
    deliberate deviation is [0 * x -> 0], which differs only when [x] is an
    infinity or NaN (never the case for stencil grid data). *)

val expr : Expr.t -> Expr.t
(** Bottom-up single pass to a fixed point:
    - binary/unary operators over constants fold (integer constants fold to
      integers for [+ - *], to floats otherwise);
    - [x + 0], [0 + x], [x - 0], [x * 1], [1 * x], [x / 1] reduce to [x];
    - [x * 0], [0 * x], [0 / x] reduce to [0];
    - [--x] reduces to [x]; [-(c)] folds. *)

val is_zero : Expr.t -> bool
val is_one : Expr.t -> bool
