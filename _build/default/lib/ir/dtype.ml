type t = I32 | F32 | F64

let size_bytes = function I32 -> 4 | F32 -> 4 | F64 -> 8
let to_c = function I32 -> "int" | F32 -> "float" | F64 -> "double"
let to_string = function I32 -> "i32" | F32 -> "f32" | F64 -> "f64"
let tolerance = function I32 -> 0.0 | F32 -> 1e-5 | F64 -> 1e-10
let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal a b = a = b
