type unop = Neg | Abs | Sqrt | Exp | Sin | Cos
type binop = Add | Sub | Mul | Div | Min | Max

type access = { tensor : string; offsets : int array }

type t =
  | Fconst of float
  | Iconst of int
  | Param of string
  | Var of string
  | Access of access
  | Unop of unop * t
  | Binop of binop * t * t
  | Call of string * t list

let f x = Fconst x
let i n = Iconst n
let p name = Param name
let read tensor offsets = Access { tensor; offsets }

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let neg a = Unop (Neg, a)

let rec fold acc fn e =
  let acc = fn acc e in
  match e with
  | Fconst _ | Iconst _ | Param _ | Var _ | Access _ -> acc
  | Unop (_, a) -> fold acc fn a
  | Binop (_, a, b) -> fold (fold acc fn a) fn b
  | Call (_, args) -> List.fold_left (fun acc a -> fold acc fn a) acc args

let accesses e =
  List.rev (fold [] (fun acc e -> match e with Access a -> a :: acc | _ -> acc) e)

let access_equal a b = String.equal a.tensor b.tensor && a.offsets = b.offsets

let distinct_accesses e =
  let seen = ref [] in
  List.iter
    (fun a -> if not (List.exists (access_equal a) !seen) then seen := a :: !seen)
    (accesses e);
  List.rev !seen

let flops e =
  fold 0
    (fun acc e ->
      match e with
      | Binop _ -> Stdlib.( + ) acc 1
      | Unop ((Neg | Abs | Sqrt | Exp | Sin | Cos), _) -> Stdlib.( + ) acc 1
      | Fconst _ | Iconst _ | Param _ | Var _ | Access _ | Call _ -> acc)
    e

let params e =
  let seen = ref [] in
  let collect acc e =
    (match e with
    | Param name -> if not (List.mem name !seen) then seen := name :: !seen
    | Fconst _ | Iconst _ | Var _ | Access _ | Unop _ | Binop _ | Call _ -> ());
    acc
  in
  let (_ : unit) = fold () collect e in
  List.rev !seen

type tap = { coeff : float; offsets : int array }

(* Linear decomposition: value = constant + sum of (coeff, access).
   We track the constant part to reject affine-but-not-linear kernels
   (a nonzero additive constant is not expressible as taps). *)
let linear_taps ~bindings e =
  let lookup name = List.assoc_opt name bindings in
  let module M = struct
    exception Not_linear
  end in
  let rec go e : float * (float * access) list =
    match e with
    | Fconst x -> (x, [])
    | Iconst n -> (float_of_int n, [])
    | Param name -> (
        match lookup name with Some v -> (v, []) | None -> raise M.Not_linear)
    | Var _ -> raise M.Not_linear
    | Access a -> (0.0, [ (1.0, a) ])
    | Unop (Neg, a) ->
        let c, taps = go a in
        (-.c, List.map (fun (k, acc) -> (-.k, acc)) taps)
    | Unop ((Abs | Sqrt | Exp | Sin | Cos), _) -> raise M.Not_linear
    | Binop (Add, a, b) ->
        let ca, ta = go a and cb, tb = go b in
        (ca +. cb, ta @ tb)
    | Binop (Sub, a, b) ->
        let ca, ta = go a and cb, tb = go b in
        (ca -. cb, ta @ List.map (fun (k, acc) -> (-.k, acc)) tb)
    | Binop (Mul, a, b) -> (
        let ca, ta = go a and cb, tb = go b in
        match (ta, tb) with
        | [], [] -> (ca *. cb, [])
        | [], taps -> (ca *. cb, List.map (fun (k, acc) -> (ca *. k, acc)) taps)
        | taps, [] -> (ca *. cb, List.map (fun (k, acc) -> (cb *. k, acc)) taps)
        | _ :: _, _ :: _ -> raise M.Not_linear)
    | Binop (Div, a, b) -> (
        let ca, ta = go a in
        match go b with
        | cb, [] when cb <> 0.0 ->
            (ca /. cb, List.map (fun (k, acc) -> (k /. cb, acc)) ta)
        | _ -> raise M.Not_linear)
    | Binop ((Min | Max), _, _) -> raise M.Not_linear
    | Call _ -> raise M.Not_linear
  in
  match go e with
  | exception M.Not_linear -> None
  | constant, raw ->
      if constant <> 0.0 then None
      else begin
        (* Merge taps sharing an offset (e.g. B[i] appearing twice). *)
        let merged = ref [] in
        List.iter
          (fun (k, acc) ->
            match
              List.find_opt (fun (_, acc') -> access_equal acc acc') !merged
            with
            | Some (k', _) ->
                merged :=
                  List.map
                    (fun (k0, acc') ->
                      if access_equal acc acc' then (k0 +. k, acc') else (k0, acc'))
                    !merged;
                ignore k'
            | None -> merged := !merged @ [ (k, acc) ])
          raw;
        Some
          (List.map
             (fun (k, (acc : access)) -> { coeff = k; offsets = acc.offsets })
             !merged)
      end

let apply_unop op x =
  match op with
  | Neg -> -.x
  | Abs -> Float.abs x
  | Sqrt -> sqrt x
  | Exp -> exp x
  | Sin -> sin x
  | Cos -> cos x

let apply_binop op a b =
  match op with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> a /. b
  | Min -> Float.min a b
  | Max -> Float.max a b

let eval ~bindings ~load ~var e =
  let rec go = function
    | Fconst x -> x
    | Iconst n -> float_of_int n
    | Param name -> (
        match List.assoc_opt name bindings with
        | Some v -> v
        | None -> invalid_arg (Printf.sprintf "Expr.eval: unbound parameter %s" name))
    | Var name -> var name
    | Access a -> load a
    | Unop (op, a) -> apply_unop op (go a)
    | Binop (op, a, b) -> apply_binop op (go a) (go b)
    | Call (name, args) -> (
        match (name, List.map go args) with
        | "pow", [ a; b ] -> Float.pow a b
        | "hypot", [ a; b ] -> Float.hypot a b
        | "fma", [ a; b; c ] -> Float.fma a b c
        | "sqrt", [ a ] -> sqrt a
        | "exp", [ a ] -> exp a
        | "log", [ a ] -> log a
        | "sin", [ a ] -> sin a
        | "cos", [ a ] -> cos a
        | "tanh", [ a ] -> tanh a
        | "fabs", [ a ] -> Float.abs a
        | _ -> invalid_arg (Printf.sprintf "Expr.eval: unknown call %s/%d" name (List.length args)))
  in
  go e

let rec map_expr fn e =
  match fn e with
  | Some e' -> e'
  | None -> (
      match e with
      | Fconst _ | Iconst _ | Param _ | Var _ | Access _ -> e
      | Unop (op, a) -> Unop (op, map_expr fn a)
      | Binop (op, a, b) -> Binop (op, map_expr fn a, map_expr fn b)
      | Call (name, args) -> Call (name, List.map (map_expr fn) args))

let rename_tensor ~from ~to_ e =
  map_expr
    (function
      | Access a when String.equal a.tensor from -> Some (Access { a with tensor = to_ })
      | _ -> None)
    e

let map_offsets fn e =
  map_expr
    (function Access a -> Some (Access { a with offsets = fn a }) | _ -> None)
    e

let unop_name = function
  | Neg -> "-"
  | Abs -> "fabs"
  | Sqrt -> "sqrt"
  | Exp -> "exp"
  | Sin -> "sin"
  | Cos -> "cos"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Min -> "min"
  | Max -> "max"

let pp_offsets ppf offsets =
  Format.pp_print_string ppf "[";
  Array.iteri
    (fun k d ->
      if k > 0 then Format.pp_print_string ppf ",";
      Format.fprintf ppf "%+d" d)
    offsets;
  Format.pp_print_string ppf "]"

let rec pp ppf = function
  | Fconst x -> Format.fprintf ppf "%g" x
  | Iconst n -> Format.fprintf ppf "%d" n
  | Param name -> Format.pp_print_string ppf name
  | Var name -> Format.pp_print_string ppf name
  | Access a -> Format.fprintf ppf "%s%a" a.tensor pp_offsets a.offsets
  | Unop (Neg, a) -> Format.fprintf ppf "(-%a)" pp a
  | Unop (op, a) -> Format.fprintf ppf "%s(%a)" (unop_name op) pp a
  | Binop ((Min | Max) as op, a, b) ->
      Format.fprintf ppf "%s(%a, %a)" (binop_name op) pp a pp b
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Call (name, args) ->
      Format.fprintf ppf "%s(%a)" name
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp)
        args

let to_string e = Format.asprintf "%a" pp e

let to_c ~index e =
  let buf = Buffer.create 256 in
  let rec go = function
    | Fconst x ->
        (* Keep full double precision and force a C floating literal. *)
        let s = Printf.sprintf "%.17g" x in
        Buffer.add_string buf
          (if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
           then s
           else s ^ ".0")
    | Iconst n -> Buffer.add_string buf (string_of_int n)
    | Param name | Var name -> Buffer.add_string buf name
    | Access a -> Buffer.add_string buf (index a)
    | Unop (Neg, a) ->
        Buffer.add_string buf "(-";
        go a;
        Buffer.add_char buf ')'
    | Unop (op, a) ->
        Buffer.add_string buf (unop_name op);
        Buffer.add_char buf '(';
        go a;
        Buffer.add_char buf ')'
    | Binop (Min, a, b) ->
        Buffer.add_string buf "fmin(";
        go a;
        Buffer.add_string buf ", ";
        go b;
        Buffer.add_char buf ')'
    | Binop (Max, a, b) ->
        Buffer.add_string buf "fmax(";
        go a;
        Buffer.add_string buf ", ";
        go b;
        Buffer.add_char buf ')'
    | Binop (op, a, b) ->
        Buffer.add_char buf '(';
        go a;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (binop_name op);
        Buffer.add_char buf ' ';
        go b;
        Buffer.add_char buf ')'
    | Call (name, args) ->
        Buffer.add_string buf name;
        Buffer.add_char buf '(';
        List.iteri
          (fun k a ->
            if k > 0 then Buffer.add_string buf ", ";
            go a)
          args;
        Buffer.add_char buf ')'
  in
  go e;
  Buffer.contents buf

let rec equal a b =
  match (a, b) with
  | Fconst x, Fconst y -> x = y
  | Iconst x, Iconst y -> Int.equal x y
  | Param x, Param y | Var x, Var y -> String.equal x y
  | Access x, Access y -> access_equal x y
  | Unop (op, x), Unop (op', y) -> op = op' && equal x y
  | Binop (op, x1, x2), Binop (op', y1, y2) -> op = op' && equal x1 y1 && equal x2 y2
  | Call (n, xs), Call (n', ys) ->
      String.equal n n' && List.length xs = List.length ys && List.for_all2 equal xs ys
  | ( ( Fconst _ | Iconst _ | Param _ | Var _ | Access _ | Unop _ | Binop _
      | Call _ ),
      _ ) ->
      false
