module Dtype = Msc_ir.Dtype
module Expr = Msc_ir.Expr
module Tensor = Msc_ir.Tensor
module Kernel = Msc_ir.Kernel
module Stencil = Msc_ir.Stencil
module Shapes = Msc_frontend.Shapes
module Builder = Msc_frontend.Builder
module Pretty = Msc_frontend.Pretty
module Schedule = Msc_schedule.Schedule
module Loopnest = Msc_schedule.Loopnest
module Grid = Msc_exec.Grid
module Runtime = Msc_exec.Runtime
module Reference = Msc_exec.Reference
module Verify = Msc_exec.Verify
module Bc = Msc_exec.Bc
module Codegen = Msc_codegen.Codegen
module Machine = Msc_machine.Machine
module Roofline = Msc_machine.Roofline
module Sunway = Msc_sunway.Sim
module Spm = Msc_sunway.Spm
module Matrix = Msc_matrix.Sim
module Mpi = Msc_comm.Mpi_sim
module Decomp = Msc_comm.Decomp
module Halo = Msc_comm.Halo
module Distributed = Msc_comm.Distributed
module Scaling = Msc_comm.Scaling
module Autotune = Msc_autotune.Autotune
module Tuning_params = Msc_autotune.Params
module Suite = Msc_benchsuite.Suite
module Experiments = Msc_benchsuite.Experiments
module Ablations = Msc_benchsuite.Ablations
module Inspector = Msc_comm.Inspector
module Domain_pool = Msc_util.Domain_pool
module Prng = Msc_util.Prng
module Units_fmt = Msc_util.Units_fmt
module Stats = Msc_util.Stats
module Table = Msc_util.Table
module Chart = Msc_util.Chart

let run ?schedule ?bc ?(workers = 1) ~steps st =
  let pool = Domain_pool.create workers in
  let rt = Runtime.create ?schedule ?bc ~pool st in
  Runtime.run rt steps;
  Runtime.current rt

let verify ?schedule ?bc ~steps st = Verify.check ?schedule ?bc ~steps st

let compile_to_source ?steps ?bc ~target st schedule =
  match Codegen.target_of_string target with
  | Error _ as e -> e
  | Ok t -> (
      try Ok (Codegen.generate ?steps ?bc st schedule t)
      with Invalid_argument msg -> Error msg)

let simulate_sunway ?steps st schedule = Sunway.simulate ?steps st schedule
let simulate_matrix ?steps st schedule = Matrix.simulate ?steps st schedule

let distribute ?schedule ?bc ~ranks_shape st =
  Distributed.create ?schedule ?bc ~ranks_shape st

let autotune ?seed ~make_stencil ~global ~nranks () =
  Autotune.tune ?seed ~make_stencil ~global ~nranks ()
