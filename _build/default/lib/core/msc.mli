(** MSC: a stencil DSL with automatic code generation and optimization for
    large-scale many-core execution (OCaml reproduction of Li et al.,
    ICPP '21).

    The typical pipeline is: define a grid and kernel with {!Builder},
    schedule it with {!Schedule} primitives, then

    - {!run} it natively (sliding time window, tiled, domain-parallel),
    - {!compile_to_source} to emit AOT C for CPU / OpenMP / Sunway athread,
    - {!simulate_sunway} / {!simulate_matrix} to predict many-core
      performance,
    - {!distribute} it over a simulated MPI grid with automatic halo
      exchange, or
    - {!autotune} the tile sizes and process grid.

    Submodules re-export every subsystem; see also the runnable programs
    under [examples/]. *)

(** {1 Re-exported subsystems} *)

module Dtype = Msc_ir.Dtype
module Expr = Msc_ir.Expr
module Tensor = Msc_ir.Tensor
module Kernel = Msc_ir.Kernel
module Stencil = Msc_ir.Stencil
module Shapes = Msc_frontend.Shapes
module Builder = Msc_frontend.Builder
module Pretty = Msc_frontend.Pretty
module Schedule = Msc_schedule.Schedule
module Loopnest = Msc_schedule.Loopnest
module Grid = Msc_exec.Grid
module Runtime = Msc_exec.Runtime
module Reference = Msc_exec.Reference
module Verify = Msc_exec.Verify
module Bc = Msc_exec.Bc
module Codegen = Msc_codegen.Codegen
module Machine = Msc_machine.Machine
module Roofline = Msc_machine.Roofline
module Sunway = Msc_sunway.Sim
module Spm = Msc_sunway.Spm
module Matrix = Msc_matrix.Sim
module Mpi = Msc_comm.Mpi_sim
module Decomp = Msc_comm.Decomp
module Halo = Msc_comm.Halo
module Distributed = Msc_comm.Distributed
module Scaling = Msc_comm.Scaling
module Autotune = Msc_autotune.Autotune
module Tuning_params = Msc_autotune.Params
module Suite = Msc_benchsuite.Suite
module Experiments = Msc_benchsuite.Experiments
module Ablations = Msc_benchsuite.Ablations
module Inspector = Msc_comm.Inspector
module Domain_pool = Msc_util.Domain_pool
module Prng = Msc_util.Prng
module Units_fmt = Msc_util.Units_fmt
module Stats = Msc_util.Stats
module Table = Msc_util.Table
module Chart = Msc_util.Chart

(** {1 Pipeline conveniences} *)

val run :
  ?schedule:Schedule.t -> ?bc:Bc.t -> ?workers:int -> steps:int -> Stencil.t ->
  Grid.t
(** Execute natively and return the final state. *)

val verify :
  ?schedule:Schedule.t -> ?bc:Bc.t -> steps:int -> Stencil.t -> Verify.report
(** §5.1 correctness check against the naive reference. *)

val compile_to_source :
  ?steps:int -> ?bc:Bc.t -> target:string -> Stencil.t -> Schedule.t ->
  (Codegen.file list, string) result
(** [target] is ["cpu"], ["openmp"]/["matrix"], or ["sunway"]/["athread"]. *)

val simulate_sunway :
  ?steps:int -> Stencil.t -> Schedule.t -> (Sunway.report, string) result

val simulate_matrix :
  ?steps:int -> Stencil.t -> Schedule.t -> (Matrix.report, string) result

val distribute :
  ?schedule:Schedule.t -> ?bc:Bc.t -> ranks_shape:int array -> Stencil.t ->
  Distributed.t

val autotune :
  ?seed:int -> make_stencil:(int array -> Stencil.t) -> global:int array ->
  nranks:int -> unit -> Autotune.result
