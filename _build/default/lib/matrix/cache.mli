(** Cache modelling for the cache-coherent Matrix MT2000+ cores.

    Two layers: a replayable set-associative LRU simulator (used by tests and
    fine-grained studies) and a closed-form working-set model (used by the
    performance simulator, where full traces would be too slow). *)

module Lru : sig
  type t

  val create : ?line_bytes:int -> ?associativity:int -> capacity_bytes:int -> unit -> t
  (** Defaults: 64-byte lines, 8-way. Capacity must be a positive multiple of
      [line_bytes * associativity]. *)

  val access : t -> int -> [ `Hit | `Miss ]
  (** Touch a byte address; updates recency and fills on miss. *)

  val accesses : t -> int
  val misses : t -> int
  val miss_rate : t -> float
  val reset : t -> unit
end

val traffic_bytes :
  capacity_bytes:int ->
  working_set_bytes:int ->
  compulsory_bytes:float ->
  resident_reuse:float ->
  float
(** Closed-form traffic estimate: compulsory traffic when the working set
    fits; otherwise amplified toward [compulsory * resident_reuse] (the
    no-reuse limit where each of the [resident_reuse] uses re-misses) as the
    working set grows past capacity. *)
