(** Trace-driven cache analysis: replay the exact memory-access stream of a
    (scheduled) stencil sweep through the {!Cache.Lru} simulator.

    This grounds the closed-form working-set model the Matrix performance
    simulator uses: the tiled traversal's measured miss rate must beat the
    untiled one whenever the grid exceeds the cache, which is the premise of
    the paper's [tile]/[reorder] primitives. Intended for small grids (every
    access is simulated). *)

type result = {
  accesses : int;
  misses : int;
  miss_rate : float;
}

val sweep_miss_rate :
  ?cache:Cache.Lru.t ->
  Msc_ir.Kernel.t ->
  Msc_schedule.Schedule.t ->
  result
(** Replay one full kernel sweep (all reads of every tap, one write per
    point) in the loop order the schedule produces — tile by tile when a
    tile primitive is present. Default cache: 32 KiB, 8-way, 64-byte lines.
    @raise Invalid_argument on an illegal schedule. *)
