lib/matrix/trace.ml: Array Cache Dtype Expr Kernel List Msc_ir Msc_schedule Tensor
