lib/matrix/cache.mli:
