lib/matrix/cache.ml: Array Float
