lib/matrix/trace.mli: Cache Msc_ir Msc_schedule
