lib/matrix/sim.ml: Array Cache Dtype Float Format Kernel List Msc_ir Msc_machine Msc_schedule Stencil Tensor
