lib/matrix/sim.mli: Format Msc_ir Msc_machine Msc_schedule
