open Msc_ir
module Schedule = Msc_schedule.Schedule

type result = { accesses : int; misses : int; miss_rate : float }

let sweep_miss_rate ?cache kernel schedule =
  (match Schedule.validate schedule ~kernel with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Trace.sweep_miss_rate: " ^ msg));
  let cache =
    match cache with
    | Some c -> c
    | None -> Cache.Lru.create ~capacity_bytes:(32 * 1024) ()
  in
  let tensor = kernel.Kernel.input in
  let dims = tensor.Tensor.shape in
  let nd = Array.length dims in
  let halo = tensor.Tensor.halo in
  let elem = Dtype.size_bytes tensor.Tensor.dtype in
  (* Row-major byte address over the padded box; the output grid lives after
     the input in the address space. *)
  let padded = Array.mapi (fun d n -> n + (2 * halo.(d))) dims in
  let strides = Array.make nd 1 in
  for d = nd - 2 downto 0 do
    strides.(d) <- strides.(d + 1) * padded.(d + 1)
  done;
  let total = padded.(0) * strides.(0) in
  let address coord offsets =
    let acc = ref 0 in
    for d = 0 to nd - 1 do
      acc := !acc + ((coord.(d) + offsets.(d) + halo.(d)) * strides.(d))
    done;
    !acc * elem
  in
  let reads =
    List.map (fun (a : Expr.access) -> a.Expr.offsets) (Expr.distinct_accesses kernel.Kernel.expr)
  in
  let visit coord =
    List.iter (fun offsets -> ignore (Cache.Lru.access cache (address coord offsets))) reads;
    (* The write stream to the (disjoint) output grid. *)
    ignore (Cache.Lru.access cache ((total * elem) + address coord (Array.make nd 0)))
  in
  (* Walk tiles in the schedule's order (row-major over tiles, then within
     the tile), or the plain nest when untiled. *)
  let tile =
    match Schedule.tile_sizes schedule ~ndim:nd with
    | Some t -> t
    | None -> Array.copy dims
  in
  let counts = Array.mapi (fun d t -> (dims.(d) + t - 1) / t) tile in
  let coord = Array.make nd 0 in
  let rec tiles d tile_base =
    if d = nd then begin
      let rec inner d =
        if d = nd then visit coord
        else begin
          let lo = tile_base.(d) in
          let hi = min dims.(d) (lo + tile.(d)) in
          for c = lo to hi - 1 do
            coord.(d) <- c;
            inner (d + 1)
          done
        end
      in
      inner 0
    end
    else
      for tnum = 0 to counts.(d) - 1 do
        tile_base.(d) <- tnum * tile.(d);
        tiles (d + 1) tile_base
      done
  in
  tiles 0 (Array.make nd 0);
  {
    accesses = Cache.Lru.accesses cache;
    misses = Cache.Lru.misses cache;
    miss_rate = Cache.Lru.miss_rate cache;
  }
