module Lru = struct
  type t = {
    line_bytes : int;
    associativity : int;
    sets : int;
    tags : int array array;  (* sets x ways, -1 = empty; index 0 = MRU *)
    mutable accesses : int;
    mutable misses : int;
  }

  let create ?(line_bytes = 64) ?(associativity = 8) ~capacity_bytes () =
    if capacity_bytes <= 0 || capacity_bytes mod (line_bytes * associativity) <> 0
    then invalid_arg "Cache.Lru.create: capacity not a multiple of way size";
    let sets = capacity_bytes / (line_bytes * associativity) in
    {
      line_bytes;
      associativity;
      sets;
      tags = Array.init sets (fun _ -> Array.make associativity (-1));
      accesses = 0;
      misses = 0;
    }

  let access t addr =
    t.accesses <- t.accesses + 1;
    let line = addr / t.line_bytes in
    let set = t.tags.(line mod t.sets) in
    let tag = line / t.sets in
    let rec find i = if i >= t.associativity then -1 else if set.(i) = tag then i else find (i + 1) in
    let pos = find 0 in
    if pos >= 0 then begin
      (* Move to MRU position. *)
      for k = pos downto 1 do
        set.(k) <- set.(k - 1)
      done;
      set.(0) <- tag;
      `Hit
    end
    else begin
      t.misses <- t.misses + 1;
      for k = t.associativity - 1 downto 1 do
        set.(k) <- set.(k - 1)
      done;
      set.(0) <- tag;
      `Miss
    end

  let accesses t = t.accesses
  let misses t = t.misses

  let miss_rate t =
    if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

  let reset t =
    Array.iter (fun set -> Array.fill set 0 (Array.length set) (-1)) t.tags;
    t.accesses <- 0;
    t.misses <- 0
end

let traffic_bytes ~capacity_bytes ~working_set_bytes ~compulsory_bytes ~resident_reuse =
  let cap = float_of_int capacity_bytes and ws = float_of_int working_set_bytes in
  if ws <= cap then compulsory_bytes
  else begin
    (* Smoothly interpolate between full reuse (ratio 1) and no reuse
       (ratio = resident_reuse) as the working set overflows the cache. *)
    let overflow = Float.min 1.0 ((ws -. cap) /. ws) in
    compulsory_bytes *. (1.0 +. (overflow *. Float.max 0.0 (resident_reuse -. 1.0)))
  end
