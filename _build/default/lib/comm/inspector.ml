type plan = {
  boundaries : int array;
  rank_costs : float array;
  imbalance : float;
}

let plan_of_boundaries ~costs boundaries =
  let parts = Array.length boundaries - 1 in
  let rank_costs =
    Array.init parts (fun r ->
        let acc = ref 0.0 in
        for i = boundaries.(r) to boundaries.(r + 1) - 1 do
          acc := !acc +. costs.(i)
        done;
        !acc)
  in
  let total = Array.fold_left ( +. ) 0.0 rank_costs in
  let mean = total /. float_of_int parts in
  let worst = Array.fold_left Float.max 0.0 rank_costs in
  {
    boundaries;
    rank_costs;
    imbalance = (if mean > 0.0 then worst /. mean else 1.0);
  }

let partition ~costs ~parts =
  let n = Array.length costs in
  if parts < 1 || parts > n then invalid_arg "Inspector.partition: bad part count";
  Array.iter (fun c -> if c < 0.0 then invalid_arg "Inspector.partition: negative cost") costs;
  (* prefix.(i) = cost of slabs [0, i). *)
  let prefix = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) +. costs.(i)
  done;
  let range_cost lo hi = prefix.(hi) -. prefix.(lo) in
  (* best.(k).(i): minimal max-range-cost splitting slabs [0, i) into k+1
     non-empty ranges; cut.(k).(i): position of the last cut. *)
  let best = Array.make_matrix parts (n + 1) infinity in
  let cut = Array.make_matrix parts (n + 1) 0 in
  for i = 1 to n do
    best.(0).(i) <- range_cost 0 i
  done;
  for k = 1 to parts - 1 do
    for i = k + 1 to n do
      for j = k to i - 1 do
        let candidate = Float.max best.(k - 1).(j) (range_cost j i) in
        if candidate < best.(k).(i) then begin
          best.(k).(i) <- candidate;
          cut.(k).(i) <- j
        end
      done
    done
  done;
  let boundaries = Array.make (parts + 1) 0 in
  boundaries.(parts) <- n;
  let pos = ref n in
  for k = parts - 1 downto 1 do
    pos := cut.(k).(!pos);
    boundaries.(k) <- !pos
  done;
  plan_of_boundaries ~costs boundaries

let even_plan ~costs ~parts =
  let n = Array.length costs in
  if parts < 1 || parts > n then invalid_arg "Inspector.even_plan: bad part count";
  let base = n / parts and rem = n mod parts in
  let boundaries = Array.make (parts + 1) 0 in
  for r = 0 to parts - 1 do
    boundaries.(r + 1) <- boundaries.(r) + base + (if r < rem then 1 else 0)
  done;
  plan_of_boundaries ~costs boundaries

let inspect (st : Msc_ir.Stencil.t) ~ranks ~cost_of_slab =
  let n = st.Msc_ir.Stencil.grid.Msc_ir.Tensor.shape.(0) in
  let costs = Array.init n cost_of_slab in
  partition ~costs ~parts:ranks

let executor_ranks_extents plan ~global =
  let nd = Array.length global in
  let parts = Array.length plan.boundaries - 1 in
  List.init parts (fun r ->
      let offset = Array.make nd 0 and extent = Array.copy global in
      offset.(0) <- plan.boundaries.(r);
      extent.(0) <- plan.boundaries.(r + 1) - plan.boundaries.(r);
      (offset, extent))
