(** Strong/weak scalability estimation (Figure 10): per-rank node performance
    comes from the processor simulators, halo-exchange cost from the network
    model, and computation/communication overlap follows the asynchronous
    design of §4.4. *)

type platform = Sunway | Tianhe3

type point = {
  ranks : int;
  cores : int;  (** ranks x cores-per-rank (65 on Sunway CGs, 32 on Matrix) *)
  mpi_grid : int array;
  sub_grid : int array;
  compute_s : float;  (** per step, per rank *)
  comm_s : float;  (** per step, per rank *)
  time_per_step_s : float;
  gflops : float;  (** aggregate achieved *)
  ideal_gflops : float;  (** linear extrapolation from the smallest run *)
}

val cores_per_rank : platform -> int

val run :
  platform:platform ->
  make_stencil:(int array -> Msc_ir.Stencil.t) ->
  configs:(int array * int array) list ->
  point list
(** [configs] pairs an MPI grid shape with the per-rank sub-grid extents
    (Table 7 rows; for strong scaling the sub-grid shrinks as ranks grow, for
    weak scaling it is constant). The stencil builder receives the sub-grid
    extents. *)

val speedup_vs_first : point list -> float
(** Achieved perf at the largest scale over the smallest (the paper reports
    6.74x strong / 7.85x weak on Sunway when cores scale 8x). *)
