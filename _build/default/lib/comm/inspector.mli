(** Inspector–executor load balancing (§5.6).

    WRF and POP2 "suffer from serious load imbalance in large-scale
    execution", so the paper plans an inspector-executor design: an
    {e inspector} phase analyses the per-subgrid cost and derives schedules,
    an {e executor} phase compiles and runs them. This module implements
    that for the decomposition dimension: given a per-slab cost profile
    along dimension 0 (e.g. land/ocean masks in POP2, refinement zones in
    WRF), the inspector computes the optimal contiguous partition and the
    executor builds a distributed run whose ranks own ragged slabs.

    The partitioner is the classic linear-partitioning dynamic program:
    minimise the maximum per-rank cost over contiguous ranges. *)

type plan = {
  boundaries : int array;
      (** length [parts + 1], [boundaries.(0) = 0],
          [boundaries.(parts) = n]; rank [r] owns slabs
          [boundaries.(r) .. boundaries.(r+1) - 1] *)
  rank_costs : float array;
  imbalance : float;  (** max rank cost / mean rank cost (1.0 = perfect) *)
}

val partition : costs:float array -> parts:int -> plan
(** Optimal contiguous partition of [costs] into [parts] non-empty ranges
    minimising the maximum range sum.
    @raise Invalid_argument if [parts < 1], [parts > length costs], or any
    cost is negative. *)

val even_plan : costs:float array -> parts:int -> plan
(** The uniform block decomposition's plan over the same costs (what the
    non-inspecting executor would do) — the baseline the inspector is
    compared against. *)

val inspect :
  Msc_ir.Stencil.t -> ranks:int -> cost_of_slab:(int -> float) -> plan
(** Inspector phase for a stencil: profile each dimension-0 slab with
    [cost_of_slab] and partition the grid over [ranks]. *)

val executor_ranks_extents : plan -> global:int array -> (int array * int array) list
(** Executor phase geometry: per-rank (offset, extent) pairs for the ragged
    dimension-0 decomposition of [global]. *)
