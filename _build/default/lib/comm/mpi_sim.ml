type key = { src : int; dst : int; tag : int }

type t = {
  nranks : int;
  queues : (key, Bytes.t Queue.t) Hashtbl.t;
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable pending : int;
}

type request = key

let create ~nranks =
  if nranks < 1 then invalid_arg "Mpi_sim.create: need at least one rank";
  {
    nranks;
    queues = Hashtbl.create 64;
    messages_sent = 0;
    bytes_sent = 0;
    pending = 0;
  }

let nranks t = t.nranks

let check_rank t r name =
  if r < 0 || r >= t.nranks then
    invalid_arg (Printf.sprintf "Mpi_sim.%s: rank %d out of [0,%d)" name r t.nranks)

let queue_of t key =
  match Hashtbl.find_opt t.queues key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t.queues key q;
      q

let isend t ~src ~dst ~tag payload =
  check_rank t src "isend";
  check_rank t dst "isend";
  Queue.push (Bytes.copy payload) (queue_of t { src; dst; tag });
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + Bytes.length payload;
  t.pending <- t.pending + 1

let irecv t ~dst ~src ~tag =
  check_rank t src "irecv";
  check_rank t dst "irecv";
  { src; dst; tag }

let wait t req =
  let q = queue_of t req in
  match Queue.take_opt q with
  | Some payload ->
      t.pending <- t.pending - 1;
      payload
  | None ->
      failwith
        (Printf.sprintf
           "Mpi_sim.wait: no message for src=%d dst=%d tag=%d (deadlock)" req.src
           req.dst req.tag)

let pending_messages t = t.pending
let messages_sent t = t.messages_sent
let bytes_sent t = t.bytes_sent

let reset_counters t =
  t.messages_sent <- 0;
  t.bytes_sent <- 0
