(** Deterministic message-passing simulator with MPI-like semantics.

    All ranks live in one process; messages are real byte buffers moved
    through tag-matched FIFO queues, so pack/unpack and matching logic are
    genuinely exercised. The distributed runtime drives ranks in lockstep
    phases: every rank posts its [isend]s, then every rank completes its
    [irecv]s — the standard non-blocking halo-exchange pattern of §4.4. *)

type t

type request

val create : nranks:int -> t
val nranks : t -> int

val isend : t -> src:int -> dst:int -> tag:int -> Bytes.t -> unit
(** Asynchronous send: enqueues a copy of the payload.
    @raise Invalid_argument on out-of-range ranks. *)

val irecv : t -> dst:int -> src:int -> tag:int -> request
(** Post a receive; completion happens at {!wait}. *)

val wait : t -> request -> Bytes.t
(** Completes the receive, FIFO per (src, dst, tag).
    @raise Failure if no matching message was sent (a deadlock in the
    lockstep protocol — indicates a neighbour/tag bug). *)

val pending_messages : t -> int
(** Sent-but-unreceived messages (should be 0 between timesteps). *)

(** {1 Traffic counters (drive the network cost model)} *)

val messages_sent : t -> int
val bytes_sent : t -> int
val reset_counters : t -> unit
