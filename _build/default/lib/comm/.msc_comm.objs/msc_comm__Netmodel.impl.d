lib/comm/netmodel.ml:
