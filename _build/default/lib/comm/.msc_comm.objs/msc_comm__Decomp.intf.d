lib/comm/decomp.mli:
