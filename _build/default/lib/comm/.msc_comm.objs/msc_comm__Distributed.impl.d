lib/comm/distributed.ml: Array Decomp Expr Halo Kernel List Mpi_sim Msc_exec Msc_ir Stencil Tensor
