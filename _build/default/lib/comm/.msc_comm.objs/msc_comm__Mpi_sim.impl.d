lib/comm/mpi_sim.ml: Bytes Hashtbl Printf Queue
