lib/comm/mpi_sim.mli: Bytes
