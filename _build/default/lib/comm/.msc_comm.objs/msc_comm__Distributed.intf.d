lib/comm/distributed.mli: Decomp Mpi_sim Msc_exec Msc_ir Msc_schedule
