lib/comm/halo.mli: Bytes Decomp Mpi_sim Msc_exec
