lib/comm/scaling.ml: Array Dtype Float List Msc_ir Msc_matrix Msc_schedule Msc_sunway Netmodel Stencil Tensor
