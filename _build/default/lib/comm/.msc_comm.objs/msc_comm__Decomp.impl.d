lib/comm/decomp.ml: Array List Printf
