lib/comm/inspector.ml: Array Float List Msc_ir
