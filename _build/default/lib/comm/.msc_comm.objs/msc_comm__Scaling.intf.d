lib/comm/scaling.mli: Msc_ir
