lib/comm/halo.ml: Array Bytes Decomp Int64 List Mpi_sim Msc_exec Printf
