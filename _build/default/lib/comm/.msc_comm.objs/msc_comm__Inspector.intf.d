lib/comm/inspector.mli: Msc_ir
