lib/comm/netmodel.mli:
