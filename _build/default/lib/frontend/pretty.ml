open Msc_ir

let shape_args shape = String.concat ", " (Array.to_list (Array.map string_of_int shape))

let access_string (a : Expr.access) vars =
  let subs =
    List.mapi
      (fun d v ->
        let off = a.Expr.offsets.(d) in
        if off = 0 then v
        else if off > 0 then Printf.sprintf "%s+%d" v off
        else Printf.sprintf "%s%d" v off)
      vars
  in
  Printf.sprintf "%s[%s]" a.Expr.tensor (String.concat "," subs)

let rec surface_expr vars (e : Expr.t) =
  match e with
  | Expr.Fconst x -> Printf.sprintf "%g" x
  | Expr.Iconst n -> string_of_int n
  | Expr.Param name | Expr.Var name -> name
  | Expr.Access a -> access_string a vars
  | Expr.Unop (Expr.Neg, a) -> Printf.sprintf "(-%s)" (surface_expr vars a)
  | Expr.Unop (op, a) ->
      let name =
        match op with
        | Expr.Abs -> "fabs"
        | Expr.Sqrt -> "sqrt"
        | Expr.Exp -> "exp"
        | Expr.Sin -> "sin"
        | Expr.Cos -> "cos"
        | Expr.Neg -> assert false
      in
      Printf.sprintf "%s(%s)" name (surface_expr vars a)
  | Expr.Binop (op, a, b) ->
      let sym =
        match op with
        | Expr.Add -> "+"
        | Expr.Sub -> "-"
        | Expr.Mul -> "*"
        | Expr.Div -> "/"
        | Expr.Min -> ","
        | Expr.Max -> ","
      in
      (match op with
      | Expr.Min -> Printf.sprintf "min(%s, %s)" (surface_expr vars a) (surface_expr vars b)
      | Expr.Max -> Printf.sprintf "max(%s, %s)" (surface_expr vars a) (surface_expr vars b)
      | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div ->
          Printf.sprintf "%s %s %s" (surface_expr vars a) sym (surface_expr vars b))
  | Expr.Call (name, args) ->
      Printf.sprintf "%s(%s)" name (String.concat ", " (List.map (surface_expr vars) args))

let rec surface_stencil_expr (e : Stencil.expr) =
  match e with
  | Stencil.Apply (k, dt) -> Printf.sprintf "%s[t-%d]" k.Kernel.name dt
  | Stencil.State dt -> Printf.sprintf "U[t-%d]" dt
  | Stencil.Scale (c, a) -> Printf.sprintf "%g * %s" c (surface_stencil_expr a)
  | Stencil.Sum (a, b) ->
      Printf.sprintf "%s + %s" (surface_stencil_expr a) (surface_stencil_expr b)
  | Stencil.Diff (a, b) ->
      Printf.sprintf "%s - %s" (surface_stencil_expr a) (surface_stencil_expr b)

let program ?(schedule_lines = []) ?mpi_shape ?(time_iters = (1, 10)) (st : Stencil.t) =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let grid = st.Stencil.grid in
  let ndim = Tensor.ndim grid in
  let vars = Builder.default_index_vars ndim in
  let dims = shape_args grid.Tensor.shape in
  (match grid.Tensor.shape with
  | [| m |] -> line "const int M = %d;" m
  | [| m; n |] when m = n -> line "const int M = N = %d;" m
  | [| m; n |] -> line "const int M = %d, N = %d;" m n
  | [| m; n; p |] when m = n && n = p -> line "const int M = N = P = %d;" m
  | [| m; n; p |] -> line "const int M = %d, N = %d, P = %d;" m n p
  | _ -> line "const int dims[] = {%s};" dims);
  line "const int halo_width = %d;" grid.Tensor.halo.(0);
  line "const int time_window_size = %d;" grid.Tensor.time_window;
  List.iter (fun v -> line "DefVar(%s, i32);" v) vars;
  line "DefTensor%dD_TimeWin(%s, time_window_size, halo_width, %s, %s);" ndim
    grid.Tensor.name
    (Dtype.to_string grid.Tensor.dtype)
    dims;
  (* Static coefficient grids referenced by any kernel. *)
  let aux_seen = ref [] in
  List.iter
    (fun k ->
      List.iter
        (fun (tensor : Tensor.t) ->
          if not (List.mem tensor.Tensor.name !aux_seen) then begin
            aux_seen := tensor.Tensor.name :: !aux_seen;
            line "DefTensor%dD(%s, halo_width, %s, %s);" ndim tensor.Tensor.name
              (Dtype.to_string tensor.Tensor.dtype)
              dims
          end)
        k.Kernel.aux)
    (Stencil.kernels st);
  List.iter
    (fun k ->
      (match k.Kernel.bindings with
      | [] -> ()
      | bindings ->
          (* One declaration line regardless of order, as a user would write. *)
          line "const %s %s;" (Dtype.to_c grid.Tensor.dtype)
            (String.concat ", "
               (List.map (fun (name, v) -> Printf.sprintf "%s = %g" name v) bindings)));
      line "Kernel %s((%s), %s, schedule);" k.Kernel.name (String.concat "," vars)
        (surface_expr vars k.Kernel.expr))
    (Stencil.kernels st);
  List.iter (fun l -> line "%s" l) schedule_lines;
  line "auto t = Stencil::t;";
  line "Result Res((%s), %s[%s]);" (String.concat "," vars) grid.Tensor.name
    (String.concat "," vars);
  line "Stencil st((%s), Res[t] << %s);" (String.concat "," vars)
    (surface_stencil_expr st.Stencil.expr);
  (match mpi_shape with
  | Some shape ->
      line "DefShapeMPI%dD(shape_mpi, %s);" (Array.length shape) (shape_args shape);
      line "st.input(shape_mpi, %s, \"/data/rand.data\");" grid.Tensor.name
  | None -> line "st.input(%s, \"/data/rand.data\");" grid.Tensor.name);
  let t0, t1 = time_iters in
  line "st.run(%d,%d);" t0 t1;
  line "st.compile_to_source_code(\"%s\");" st.Stencil.name;
  Buffer.contents buf

let loc text =
  let lines = String.split_on_char '\n' text in
  List.length
    (List.filter
       (fun l ->
         let t = String.trim l in
         String.length t > 0
         && not (String.length t >= 2 && String.sub t 0 2 = "//"))
       lines)
