type shape = Star | Box

let star_offsets ~ndim ~radius =
  let centre = Array.make ndim 0 in
  let arms =
    List.concat
      (List.init ndim (fun d ->
           List.concat
             (List.init radius (fun r ->
                  let minus = Array.make ndim 0 and plus = Array.make ndim 0 in
                  minus.(d) <- -(r + 1);
                  plus.(d) <- r + 1;
                  [ minus; plus ]))))
  in
  centre :: arms

let box_offsets ~ndim ~radius =
  let width = (2 * radius) + 1 in
  let total =
    let rec pow acc = function 0 -> acc | n -> pow (acc * width) (n - 1) in
    pow 1 ndim
  in
  let nth i =
    let off = Array.make ndim 0 in
    let rest = ref i in
    for d = ndim - 1 downto 0 do
      off.(d) <- (!rest mod width) - radius;
      rest := !rest / width
    done;
    off
  in
  let centre = Array.make ndim 0 in
  let all = List.init total nth in
  (* Centre first, then the rest in lexicographic order. *)
  centre :: List.filter (fun o -> o <> centre) all

let offsets shape ~ndim ~radius =
  assert (ndim >= 1 && radius >= 1);
  match shape with
  | Star -> star_offsets ~ndim ~radius
  | Box -> box_offsets ~ndim ~radius

let point_count shape ~ndim ~radius =
  match shape with
  | Star -> 1 + (2 * radius * ndim)
  | Box ->
      let width = (2 * radius) + 1 in
      let rec pow acc = function 0 -> acc | n -> pow (acc * width) (n - 1) in
      pow 1 ndim

let name shape ~ndim ~radius =
  let suffix = match shape with Star -> "star" | Box -> "box" in
  Printf.sprintf "%dd%dpt_%s" ndim (point_count shape ~ndim ~radius) suffix

let pp_shape ppf s =
  Format.pp_print_string ppf (match s with Star -> "star" | Box -> "box")
