(** Renders a stencil program back to MSC's concrete (C++-embedded) surface
    syntax — the code a user would write, as in the paper's Listing 1/2.

    The LoC comparison of Table 6 counts lines of this rendering against the
    generated baseline codes. *)

val program :
  ?schedule_lines:string list ->
  ?mpi_shape:int array ->
  ?time_iters:int * int ->
  Msc_ir.Stencil.t -> string
(** [program st] renders variable declarations, the tensor declaration, the
    kernel definitions, the optional optimization-primitive lines, the
    temporal stencil combination, MPI-grid/input/run statements and the final
    [compile_to_source_code] call. *)

val loc : string -> int
(** Number of non-empty, non-comment-only lines. *)
