lib/frontend/shapes.ml: Array Format List Printf
