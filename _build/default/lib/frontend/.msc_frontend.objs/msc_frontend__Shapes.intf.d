lib/frontend/shapes.mli: Format
