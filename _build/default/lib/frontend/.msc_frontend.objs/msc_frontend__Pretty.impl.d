lib/frontend/pretty.ml: Array Buffer Builder Dtype Expr Kernel List Msc_ir Printf Stencil String Tensor
