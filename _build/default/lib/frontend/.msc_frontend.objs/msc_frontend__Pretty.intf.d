lib/frontend/pretty.mli: Msc_ir
