lib/frontend/builder.ml: Array Expr Kernel List Msc_ir Printf Shapes Stencil Tensor
