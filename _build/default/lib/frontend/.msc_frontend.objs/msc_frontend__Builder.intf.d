lib/frontend/builder.mli: Msc_ir Shapes
