(** Stencil shape generators: star and box neighbourhoods of a given radius
    (§1: "a stencil can be defined from many aspects, such as grid dimensions,
    shapes, number of neighbors"). *)

type shape = Star | Box

val offsets : shape -> ndim:int -> radius:int -> int array list
(** Neighbourhood offsets including the centre point, in deterministic
    lexicographic order with the centre first.

    - [Star]: centre plus offsets [±1..±radius] along each axis
      ([1 + 2*radius*ndim] points);
    - [Box]: the full [(2*radius+1)^ndim] hypercube. *)

val point_count : shape -> ndim:int -> radius:int -> int

val name : shape -> ndim:int -> radius:int -> string
(** Canonical benchmark-style name, e.g. ["3d7pt_star"], ["2d121pt_box"]. *)

val pp_shape : Format.formatter -> shape -> unit
