(** Roofline model (Figure 9): attainable performance as a function of
    operational intensity. *)

type bound = Memory_bound | Compute_bound

type point = {
  label : string;
  intensity : float;  (** flops per main-memory byte *)
  achieved_gflops : float;
  attainable_gflops : float;
  bound : bound;
}

val ridge_point : Machine.t -> Msc_ir.Dtype.t -> float
(** Intensity at which the bandwidth roof meets the compute roof. *)

val attainable : Machine.t -> Msc_ir.Dtype.t -> intensity:float -> float
(** [min(peak, bandwidth * intensity)] in GFlop/s. *)

val classify : Machine.t -> Msc_ir.Dtype.t -> intensity:float -> bound

val make_point :
  Machine.t -> Msc_ir.Dtype.t -> label:string -> intensity:float ->
  achieved_gflops:float -> point

val bound_to_string : bound -> string
val pp_point : Format.formatter -> point -> unit
