type t = {
  name : string;
  frequency_ghz : float;
  compute_units : int;
  fp64_flops_per_cycle_per_unit : float;
  vector_efficiency_star : float;
  vector_efficiency_box : float;
  mem_bandwidth_gbs : float;
  spm_bytes_per_unit : int option;
  cache_bytes_per_unit : int option;
  dma_descriptor_latency_s : float;
  mpi_alpha_s : float;
  mpi_beta_gbs : float;
}

let peak_gflops t dtype =
  let fp64 =
    t.frequency_ghz *. t.fp64_flops_per_cycle_per_unit *. float_of_int t.compute_units
  in
  match dtype with
  | Msc_ir.Dtype.F64 -> fp64
  | Msc_ir.Dtype.F32 -> 2.0 *. fp64
  | Msc_ir.Dtype.I32 -> fp64

let effective_gflops t dtype ~shape_box =
  peak_gflops t dtype
  *. (if shape_box then t.vector_efficiency_box else t.vector_efficiency_star)

let sunway_cg =
  {
    name = "Sunway SW26010 (1 CG: 1 MPE + 64 CPEs)";
    frequency_ghz = 1.45;
    compute_units = 64;
    (* 3.06 TFlops chip / 4 CGs / 64 CPEs / 1.45 GHz ~= 8 flops/cycle
       (4-wide fp64 FMA). *)
    fp64_flops_per_cycle_per_unit = 8.0;
    (* Discrete star arms defeat the 256-bit SIMD units; compact box rows
       vectorize well. *)
    vector_efficiency_star = 0.25;
    vector_efficiency_box = 0.42;
    (* DDR3 per CG; ~136 GB/s chip attainable ~34 GB/s per CG via DMA. *)
    mem_bandwidth_gbs = 34.0;
    spm_bytes_per_unit = Some (64 * 1024);
    cache_bytes_per_unit = None;
    dma_descriptor_latency_s = 0.3e-6;
    mpi_alpha_s = 1.5e-6;
    mpi_beta_gbs = 6.0;
  }

let matrix_node =
  {
    name = "Matrix MT2000+ (1 SN: 32 cores)";
    frequency_ghz = 2.0;
    compute_units = 32;
    fp64_flops_per_cycle_per_unit = 8.0;
    vector_efficiency_star = 0.3;
    vector_efficiency_box = 0.55;
    (* 8x DDR4-2400 ~= 153.6 GB/s chip; one of four supernodes. *)
    mem_bandwidth_gbs = 38.4;
    spm_bytes_per_unit = None;
    cache_bytes_per_unit = Some (512 * 1024);
    dma_descriptor_latency_s = 0.0;
    mpi_alpha_s = 2.0e-6;
    mpi_beta_gbs = 3.0;
  }

let xeon_server =
  {
    name = "2x Intel E5-2680v4 (28 cores)";
    frequency_ghz = 2.4;
    compute_units = 28;
    (* AVX2: 2 x 4-wide fp64 FMA. *)
    fp64_flops_per_cycle_per_unit = 16.0;
    vector_efficiency_star = 0.3;
    vector_efficiency_box = 0.5;
    mem_bandwidth_gbs = 120.0;
    spm_bytes_per_unit = None;
    cache_bytes_per_unit = Some (2560 * 1024);
    dma_descriptor_latency_s = 0.0;
    mpi_alpha_s = 0.5e-6;
    mpi_beta_gbs = 10.0;
  }

let pp ppf t =
  Format.fprintf ppf
    "%s: %d units @ %.2f GHz, peak %.0f GFlop/s fp64, %.1f GB/s" t.name
    t.compute_units t.frequency_ghz (peak_gflops t Msc_ir.Dtype.F64)
    t.mem_bandwidth_gbs
