lib/machine/machine.ml: Format Msc_ir
