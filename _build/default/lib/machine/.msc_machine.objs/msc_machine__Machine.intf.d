lib/machine/machine.mli: Format Msc_ir
