lib/machine/roofline.ml: Float Format Machine
