lib/machine/roofline.mli: Format Machine Msc_ir
