(** Machine descriptors for the three evaluation platforms (paper Table 3 and
    §2.2). All performance simulation and roofline analysis keys off these
    records; the numbers come from the paper and the cited architecture
    references. *)

type t = {
  name : string;
  frequency_ghz : float;
  compute_units : int;  (** CPEs per CG / cores per Matrix node / CPU cores *)
  fp64_flops_per_cycle_per_unit : float;
      (** peak double-precision flops per cycle per compute unit *)
  vector_efficiency_star : float;
      (** achievable fraction of peak for star stencils (discrete accesses) *)
  vector_efficiency_box : float;
      (** achievable fraction of peak for box stencils (compact accesses) *)
  mem_bandwidth_gbs : float;  (** attainable main-memory bandwidth, GB/s *)
  spm_bytes_per_unit : int option;  (** scratchpad (cache-less designs) *)
  cache_bytes_per_unit : int option;  (** private cache (cached designs) *)
  dma_descriptor_latency_s : float;
      (** per-descriptor DMA setup/completion latency (SPM designs) *)
  mpi_alpha_s : float;  (** per-message network latency when clustered *)
  mpi_beta_gbs : float;  (** per-link network bandwidth, GB/s *)
}

val peak_gflops : t -> Msc_ir.Dtype.t -> float
(** Aggregate peak for the given precision (fp32 counts double the fp64
    rate). *)

val effective_gflops : t -> Msc_ir.Dtype.t -> shape_box:bool -> float
(** Peak derated by the achievable vector efficiency for the access shape. *)

val sunway_cg : t
(** One SW26010 core group: 64 CPEs @ 1.45 GHz, 64 KB SPM each, DMA to
    DDR3. Chip peak 3.06 TFlops / 4 CGs. *)

val matrix_node : t
(** One MT2000+ supernode allocation: 32 cores @ 2.0 GHz, 8 flops/cycle,
    cache-coherent panels. *)

val xeon_server : t
(** Two-socket E5-2680v4: 28 cores, AVX2. *)

val pp : Format.formatter -> t -> unit
