type bound = Memory_bound | Compute_bound

type point = {
  label : string;
  intensity : float;
  achieved_gflops : float;
  attainable_gflops : float;
  bound : bound;
}

let ridge_point m dtype = Machine.peak_gflops m dtype /. m.Machine.mem_bandwidth_gbs

let attainable m dtype ~intensity =
  Float.min (Machine.peak_gflops m dtype) (m.Machine.mem_bandwidth_gbs *. intensity)

let classify m dtype ~intensity =
  if intensity < ridge_point m dtype then Memory_bound else Compute_bound

let make_point m dtype ~label ~intensity ~achieved_gflops =
  {
    label;
    intensity;
    achieved_gflops;
    attainable_gflops = attainable m dtype ~intensity;
    bound = classify m dtype ~intensity;
  }

let bound_to_string = function
  | Memory_bound -> "memory-bound"
  | Compute_bound -> "compute-bound"

let pp_point ppf p =
  Format.fprintf ppf "%s: OI=%.2f F/B, %.2f GFlop/s (roof %.2f, %s)" p.label
    p.intensity p.achieved_gflops p.attainable_gflops (bound_to_string p.bound)
