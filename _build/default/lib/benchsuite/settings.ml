module Schedule = Msc_schedule.Schedule

type table5_row = {
  benchmarks : string list;
  grid : int array;
  paper_sunway_tile : int array;
  sunway_tile : int array;
  matrix_tile : int array;
  reorder : string list;
}

let reorder_2d = [ "xo"; "yo"; "xi"; "yi" ]
let reorder_3d = [ "xo"; "yo"; "zo"; "xi"; "yi"; "zi" ]

let table5 =
  [
    {
      benchmarks = [ "2d9pt_star"; "2d9pt_box" ];
      grid = [| 4096; 4096 |];
      paper_sunway_tile = [| 32; 64 |];
      sunway_tile = [| 32; 64 |];
      matrix_tile = [| 2; 2048 |];
      reorder = reorder_2d;
    };
    {
      benchmarks = [ "2d121pt_box"; "2d169pt_box" ];
      grid = [| 4096; 4096 |];
      paper_sunway_tile = [| 16; 32 |];
      sunway_tile = [| 16; 32 |];
      matrix_tile = [| 2; 2048 |];
      reorder = reorder_2d;
    };
    {
      benchmarks = [ "3d7pt_star" ];
      grid = [| 256; 256; 256 |];
      paper_sunway_tile = [| 2; 8; 64 |];
      sunway_tile = [| 2; 8; 64 |];
      matrix_tile = [| 2; 8; 256 |];
      reorder = reorder_3d;
    };
    {
      benchmarks = [ "3d13pt_star" ];
      grid = [| 256; 256; 256 |];
      paper_sunway_tile = [| 2; 8; 64 |];
      (* The paper's tile holds one input state; the two-time-window read
         buffers need a narrower tile to fit 64 KB. *)
      sunway_tile = [| 2; 4; 64 |];
      matrix_tile = [| 2; 8; 256 |];
      reorder = reorder_3d;
    };
    {
      benchmarks = [ "3d25pt_star" ];
      grid = [| 256; 256; 256 |];
      paper_sunway_tile = [| 2; 4; 32 |];
      sunway_tile = [| 2; 4; 16 |];
      matrix_tile = [| 2; 8; 256 |];
      reorder = reorder_3d;
    };
    {
      benchmarks = [ "3d31pt_star" ];
      grid = [| 256; 256; 256 |];
      paper_sunway_tile = [| 2; 4; 32 |];
      sunway_tile = [| 2; 2; 16 |];
      matrix_tile = [| 2; 8; 256 |];
      reorder = reorder_3d;
    };
  ]

let row_for (b : Suite.bench) =
  match
    List.find_opt (fun r -> List.mem b.Suite.name r.benchmarks) table5
  with
  | Some r -> r
  | None -> invalid_arg ("Settings: no Table 5 row for " ^ b.Suite.name)

let sunway_tile b = Array.copy (row_for b).sunway_tile
let matrix_tile b = Array.copy (row_for b).matrix_tile

let sunway_schedule b st =
  Schedule.sunway_canonical ~tile:(sunway_tile b) (Suite.kernel_of st)

let matrix_schedule b st =
  Schedule.matrix_canonical ~tile:(matrix_tile b) (Suite.kernel_of st)

let cpu_schedule b st =
  Schedule.cpu_canonical ~tile:(matrix_tile b) ~threads:28 (Suite.kernel_of st)

type scaling_config = {
  dim : int;
  weak_sub_grid : int array;
  strong_sub_grid : int array;
  sunway_mpi_grid : int array;
  tianhe3_mpi_grid : int array;
}

let table7 =
  [
    (* 2-D rows *)
    {
      dim = 2;
      weak_sub_grid = [| 4096; 4096 |];
      strong_sub_grid = [| 4096; 4096 |];
      sunway_mpi_grid = [| 16; 8 |];
      tianhe3_mpi_grid = [| 8; 4 |];
    };
    {
      dim = 2;
      weak_sub_grid = [| 4096; 4096 |];
      strong_sub_grid = [| 4096; 2048 |];
      sunway_mpi_grid = [| 16; 16 |];
      tianhe3_mpi_grid = [| 8; 8 |];
    };
    {
      dim = 2;
      weak_sub_grid = [| 4096; 4096 |];
      strong_sub_grid = [| 2048; 2048 |];
      sunway_mpi_grid = [| 32; 16 |];
      tianhe3_mpi_grid = [| 16; 8 |];
    };
    {
      dim = 2;
      weak_sub_grid = [| 4096; 4096 |];
      strong_sub_grid = [| 2048; 1024 |];
      sunway_mpi_grid = [| 32; 32 |];
      tianhe3_mpi_grid = [| 16; 16 |];
    };
    (* 3-D rows *)
    {
      dim = 3;
      weak_sub_grid = [| 256; 256; 256 |];
      strong_sub_grid = [| 256; 256; 256 |];
      sunway_mpi_grid = [| 8; 4; 4 |];
      tianhe3_mpi_grid = [| 4; 4; 2 |];
    };
    {
      dim = 3;
      weak_sub_grid = [| 256; 256; 256 |];
      strong_sub_grid = [| 256; 256; 128 |];
      sunway_mpi_grid = [| 8; 8; 4 |];
      tianhe3_mpi_grid = [| 4; 4; 4 |];
    };
    {
      dim = 3;
      weak_sub_grid = [| 256; 256; 256 |];
      strong_sub_grid = [| 256; 128; 128 |];
      sunway_mpi_grid = [| 8; 8; 8 |];
      tianhe3_mpi_grid = [| 4; 8; 4 |];
    };
    {
      dim = 3;
      weak_sub_grid = [| 256; 256; 256 |];
      strong_sub_grid = [| 128; 128; 128 |];
      sunway_mpi_grid = [| 16; 8; 8 |];
      tianhe3_mpi_grid = [| 8; 8; 4 |];
    };
  ]

type physis_config = {
  dim : int;
  global : int array;
  sub_grid : int array;
  mpi_grid : int array;
  mpi_processes : int;
  omp_threads : int;
}

let table8 =
  [
    {
      dim = 2;
      global = [| 16384; 28672 |];
      sub_grid = [| 4096; 4096 |];
      mpi_grid = [| 4; 7 |];
      mpi_processes = 28;
      omp_threads = 1;
    };
    {
      dim = 2;
      global = [| 16384; 28672 |];
      sub_grid = [| 8192; 4096 |];
      mpi_grid = [| 2; 7 |];
      mpi_processes = 14;
      omp_threads = 2;
    };
    {
      dim = 2;
      global = [| 16384; 28672 |];
      sub_grid = [| 16384; 4096 |];
      mpi_grid = [| 1; 7 |];
      mpi_processes = 7;
      omp_threads = 4;
    };
    {
      dim = 3;
      global = [| 512; 512; 1792 |];
      sub_grid = [| 256; 256; 256 |];
      mpi_grid = [| 2; 2; 7 |];
      mpi_processes = 28;
      omp_threads = 1;
    };
    {
      dim = 3;
      global = [| 512; 512; 1792 |];
      sub_grid = [| 512; 256; 256 |];
      mpi_grid = [| 1; 2; 7 |];
      mpi_processes = 14;
      omp_threads = 2;
    };
    {
      dim = 3;
      global = [| 512; 512; 1792 |];
      sub_grid = [| 512; 512; 256 |];
      mpi_grid = [| 1; 1; 7 |];
      mpi_processes = 7;
      omp_threads = 4;
    };
  ]
