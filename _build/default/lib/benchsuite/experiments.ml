open Msc_ir
module Table = Msc_util.Table
module Chart = Msc_util.Chart
module Stats = Msc_util.Stats
module Schedule = Msc_schedule.Schedule
module Ssim = Msc_sunway.Sim
module Msim = Msc_matrix.Sim
module Roofline = Msc_machine.Roofline
module Machine = Msc_machine.Machine

let ints a = String.concat "," (Array.to_list (Array.map string_of_int a))

(* ------------------------------------------------------------------ *)
(* Table 4 *)

type table4_row = {
  bench : Suite.bench;
  read_bytes : int;
  write_bytes : int;
  ops : int;
  paper_ops : int;
}

let table4 () =
  List.map
    (fun b ->
      let st = Suite.stencil b in
      let k = Suite.kernel_of st in
      {
        bench = b;
        read_bytes = Kernel.read_bytes_per_point k;
        write_bytes = Kernel.write_bytes_per_point k;
        ops = Kernel.flops_per_point k;
        paper_ops = b.Suite.paper_ops;
      })
    Suite.all

let render_table4 () =
  let rows =
    List.map
      (fun r ->
        [
          r.bench.Suite.name;
          string_of_int r.read_bytes;
          string_of_int (r.bench.Suite.paper_read_bytes);
          string_of_int r.write_bytes;
          string_of_int r.ops;
          string_of_int r.paper_ops;
          string_of_int r.bench.Suite.time_dep;
        ])
      (table4 ())
  in
  Table.render
    ~title:
      "Table 4: stencil benchmarks (measured = derived from the IR; the paper's\n\
       high-order kernels share coefficients, hence slightly fewer ops there)"
    ~header:
      [ "Benchmark"; "Read(B)"; "paper"; "Write(B)"; "Ops"; "paper Ops"; "Time dep" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 7 *)

type fig7_row = {
  benchmark : string;
  msc : Ssim.report;
  openacc : Ssim.report;
  speedup : float;
}

let fig7 ~precision =
  List.map
    (fun b ->
      let st = Suite.stencil ~dtype:precision b in
      let sched = Settings.sunway_schedule b st in
      match (Ssim.simulate st sched, Msc_baselines.Openacc_model.simulate st) with
      | Ok msc, Ok openacc ->
          {
            benchmark = b.Suite.name;
            msc;
            openacc;
            speedup = openacc.Ssim.time_per_step_s /. msc.Ssim.time_per_step_s;
          }
      | Error msg, _ | _, Error msg -> invalid_arg ("fig7: " ^ msg))
    Suite.all

let fig7_average ~precision =
  Stats.mean (Array.of_list (List.map (fun r -> r.speedup) (fig7 ~precision)))

let render_fig7 () =
  let section precision label =
    let rows = fig7 ~precision in
    let table =
      Table.render
        ~title:
          (Printf.sprintf
             "Figure 7 (%s): MSC vs OpenACC on one Sunway CG (OpenACC = 1.0)" label)
        ~header:[ "Benchmark"; "MSC ms/step"; "OpenACC ms/step"; "Speedup" ]
        (List.map
           (fun r ->
             [
               r.benchmark;
               Table.fmt_float (r.msc.Ssim.time_per_step_s *. 1e3);
               Table.fmt_float (r.openacc.Ssim.time_per_step_s *. 1e3);
               Table.fmt_speedup r.speedup;
             ])
           rows)
    in
    let chart =
      Chart.bar_chart
        ~title:(Printf.sprintf "speedup over OpenACC (%s)" label)
        ~unit_label:"x"
        (List.map (fun r -> (r.benchmark, r.speedup)) rows)
    in
    let avg = Stats.mean (Array.of_list (List.map (fun r -> r.speedup) rows)) in
    Printf.sprintf "%s%s\naverage speedup: %.2fx (paper: %s)\n\n" table chart avg
      (match precision with Dtype.F64 -> "24.4x" | _ -> "20.7x")
  in
  section Dtype.F64 "fp64" ^ section Dtype.F32 "fp32"

(* ------------------------------------------------------------------ *)
(* Figure 8 *)

type fig8_row = {
  benchmark : string;
  msc : Msim.report;
  openmp : Msim.report;
  speedup : float;
}

let fig8 ~precision =
  List.map
    (fun b ->
      let st = Suite.stencil ~dtype:precision b in
      let sched = Settings.matrix_schedule b st in
      match (Msim.simulate st sched, Msc_baselines.Openmp_model.simulate st sched) with
      | Ok msc, Ok openmp ->
          {
            benchmark = b.Suite.name;
            msc;
            openmp;
            speedup = openmp.Msim.time_per_step_s /. msc.Msim.time_per_step_s;
          }
      | Error msg, _ | _, Error msg -> invalid_arg ("fig8: " ^ msg))
    Suite.all

let render_fig8 () =
  let section precision label =
    let rows = fig8 ~precision in
    let avg = Stats.mean (Array.of_list (List.map (fun r -> r.speedup) rows)) in
    Table.render
      ~title:
        (Printf.sprintf
           "Figure 8 (%s): MSC vs hand-tuned OpenMP on a Matrix processor (OpenMP = 1.0)"
           label)
      ~header:[ "Benchmark"; "MSC ms/step"; "OpenMP ms/step"; "MSC perf" ]
      (List.map
         (fun r ->
           [
             r.benchmark;
             Table.fmt_float (r.msc.Msim.time_per_step_s *. 1e3);
             Table.fmt_float (r.openmp.Msim.time_per_step_s *. 1e3);
             Table.fmt_speedup r.speedup;
           ])
         rows)
    ^ Printf.sprintf "average: %.2fx (paper: %s)\n\n" avg
        (match precision with Dtype.F64 -> "1.05x" | _ -> "1.03x")
  in
  section Dtype.F64 "fp64" ^ section Dtype.F32 "fp32"

(* ------------------------------------------------------------------ *)
(* Figure 9 *)

(* The roofline points carry the simulator's own binding-resource verdict
   (compute vs DMA time), not the bare OI-vs-ridge classification: a kernel
   whose vector efficiency is below peak can be compute-bound left of the
   nominal ridge, which is exactly the 2d169pt-on-Sunway case in Figure 9. *)
let fig9_points machine simulate =
  List.map
    (fun b ->
      let st = Suite.stencil b in
      match simulate b st with
      | Ok (gflops, intensity, bound) ->
          {
            Roofline.label = b.Suite.name;
            intensity;
            achieved_gflops = gflops;
            attainable_gflops = Roofline.attainable machine Dtype.F64 ~intensity;
            bound;
          }
      | Error msg -> invalid_arg ("fig9: " ^ msg))
    Suite.all

let fig9_sunway () =
  fig9_points Machine.sunway_cg (fun b st ->
      match Ssim.simulate st (Settings.sunway_schedule b st) with
      | Ok r -> Ok (r.Ssim.gflops, r.Ssim.intensity, r.Ssim.bound)
      | Error m -> Error m)

let fig9_matrix () =
  fig9_points Machine.matrix_node (fun b st ->
      match Msim.simulate st (Settings.matrix_schedule b st) with
      | Ok r -> Ok (r.Msim.gflops, r.Msim.intensity, r.Msim.bound)
      | Error m -> Error m)

let render_roofline machine points =
  let ridge = Roofline.ridge_point machine Dtype.F64 in
  let table =
    Table.render
      ~title:
        (Printf.sprintf "Roofline on %s (ridge at %.1f Flop/B)" machine.Machine.name
           ridge)
      ~header:[ "Benchmark"; "OI (F/B)"; "GFlop/s"; "roof"; "bound" ]
      (List.map
         (fun (p : Roofline.point) ->
           [
             p.Roofline.label;
             Table.fmt_float p.Roofline.intensity;
             Table.fmt_float p.Roofline.achieved_gflops;
             Table.fmt_float p.Roofline.attainable_gflops;
             Roofline.bound_to_string p.Roofline.bound;
           ])
         points)
  in
  let chart =
    Chart.line_chart ~title:"roofline (log-ish axes by magnitude)" ~x_label:"OI"
      ~y_label:"GFlop/s"
      [
        ( "achieved",
          List.map
            (fun (p : Roofline.point) ->
              (log10 p.Roofline.intensity, log10 (Float.max 0.1 p.Roofline.achieved_gflops)))
            points );
        ( "roof",
          List.init 40 (fun i ->
              let oi = 10.0 ** (-1.0 +. (float_of_int i /. 13.0)) in
              (log10 oi, log10 (Roofline.attainable machine Dtype.F64 ~intensity:oi))) );
      ]
  in
  table ^ chart

let render_fig9 () =
  "Figure 9: roofline analysis (fp64)\n\n"
  ^ render_roofline Machine.sunway_cg (fig9_sunway ())
  ^ "\n"
  ^ render_roofline Machine.matrix_node (fig9_matrix ())
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* Tables 1, 5, 7, 8 *)

let render_table1 () =
  let feature_rows =
    [
      ("Stencil: single timestep", [ "MSC"; "Halide"; "Pluto"; "Patus"; "YASK"; "STELLA"; "Physis"; "Devito" ]);
      ("Stencil: multiple timestep", [ "MSC"; "Devito" ]);
      ("Hardware: CPU", [ "MSC"; "Halide"; "Pluto"; "Patus"; "YASK"; "STELLA"; "Physis"; "Devito" ]);
      ("Hardware: GPU", [ "Halide"; "Patus"; "STELLA"; "Physis"; "Devito" ]);
      ("Hardware: many-core (Sunway/Matrix)", [ "MSC" ]);
      ("Optimization: spatial tiling", [ "MSC"; "Halide"; "Pluto"; "Patus"; "YASK"; "STELLA"; "Physis"; "Devito" ]);
      ("Optimization: auto-tuning", [ "MSC"; "Halide"; "Pluto"; "Patus"; "YASK"; "Devito" ]);
      ("Distributed: halo exchange", [ "MSC"; "YASK"; "STELLA"; "Physis"; "Devito" ]);
      ("Distributed: pluggable comm library", [ "MSC" ]);
    ]
  in
  Table.render ~title:"Table 1 (abridged): MSC vs existing stencil DSLs"
    ~header:[ "Capability"; "Supported by" ]
    (List.map (fun (cap, who) -> [ cap; String.concat ", " who ]) feature_rows)

let render_table5 () =
  Table.render ~title:"Table 5: parameter settings (Sunway tile adjusted to fit\nthe 2-state time window in 64 KB SPM where needed)"
    ~header:
      [ "Stencils"; "Grid"; "Sunway tile (paper)"; "Sunway tile (used)"; "Matrix tile"; "Reorder" ]
    (List.map
       (fun (r : Settings.table5_row) ->
         [
           String.concat " " r.Settings.benchmarks;
           ints r.Settings.grid;
           "(" ^ ints r.Settings.paper_sunway_tile ^ ")";
           "(" ^ ints r.Settings.sunway_tile ^ ")";
           "(" ^ ints r.Settings.matrix_tile ^ ")";
           "(" ^ String.concat "," r.Settings.reorder ^ ")";
         ])
       Settings.table5)

let render_table7 () =
  Table.render ~title:"Table 7: scalability configurations (Sunway | Tianhe-3)"
    ~header:
      [ "Dim"; "Weak sub-grid"; "Strong sub-grid"; "MPI grid (Sunway)"; "MPI grid (TH-3)"; "Procs" ]
    (List.map
       (fun (c : Settings.scaling_config) ->
         [
           string_of_int c.Settings.dim ^ "D";
           ints c.Settings.weak_sub_grid;
           ints c.Settings.strong_sub_grid;
           ints c.Settings.sunway_mpi_grid;
           ints c.Settings.tianhe3_mpi_grid;
           Printf.sprintf "%d | %d"
             (Array.fold_left ( * ) 1 c.Settings.sunway_mpi_grid)
             (Array.fold_left ( * ) 1 c.Settings.tianhe3_mpi_grid);
         ])
       Settings.table7)

let render_table8 () =
  Table.render ~title:"Table 8: MSC configurations for the Physis comparison"
    ~header:[ "Dim"; "Global"; "Sub-grid"; "MPI grid"; "Processes"; "OMP threads" ]
    (List.map
       (fun (c : Settings.physis_config) ->
         [
           string_of_int c.Settings.dim ^ "D";
           ints c.Settings.global;
           ints c.Settings.sub_grid;
           ints c.Settings.mpi_grid;
           string_of_int c.Settings.mpi_processes;
           string_of_int c.Settings.omp_threads;
         ])
       Settings.table8)

(* ------------------------------------------------------------------ *)
(* Table 6 *)

let table6 () =
  List.map
    (fun b ->
      let st = Suite.stencil b in
      Msc_baselines.Loc.row st
        ~sunway_schedule:(Settings.sunway_schedule b st)
        ~matrix_schedule:(Settings.matrix_schedule b st)
        ~matrix_tile:(Settings.matrix_tile b)
        ~mpi_shape:(if b.Suite.ndim = 2 then [| 4; 4 |] else [| 4; 4; 4 |]))
    Suite.all

let render_table6 () =
  Table.render ~title:"Table 6: LoC comparison (MSC DSL vs manually optimized codes)"
    ~header:[ "Benchmark"; "MSC (Sunway)"; "OpenACC"; "MSC (Matrix)"; "OpenMP" ]
    (List.map
       (fun (r : Msc_baselines.Loc.row) ->
         [
           r.Msc_baselines.Loc.benchmark;
           string_of_int r.Msc_baselines.Loc.msc_sunway;
           string_of_int r.Msc_baselines.Loc.openacc;
           string_of_int r.Msc_baselines.Loc.msc_matrix;
           string_of_int r.Msc_baselines.Loc.openmp;
         ])
       (table6 ()))

(* ------------------------------------------------------------------ *)
(* Figure 10 *)

type fig10_series = {
  benchmark : string;
  platform : Msc_comm.Scaling.platform;
  mode : [ `Strong | `Weak ];
  points : Msc_comm.Scaling.point list;
}

let fig10 () =
  let make b dims =
    Suite.stencil ~dims b
  in
  List.concat_map
    (fun b ->
      let configs ~platform ~mode =
        List.filter_map
          (fun (c : Settings.scaling_config) ->
            if c.Settings.dim <> b.Suite.ndim then None
            else begin
              let mpi =
                match platform with
                | Msc_comm.Scaling.Sunway -> c.Settings.sunway_mpi_grid
                | Msc_comm.Scaling.Tianhe3 -> c.Settings.tianhe3_mpi_grid
              in
              let sub =
                match mode with
                | `Strong -> c.Settings.strong_sub_grid
                | `Weak -> c.Settings.weak_sub_grid
              in
              Some (mpi, sub)
            end)
          Settings.table7
      in
      List.concat_map
        (fun platform ->
          List.map
            (fun mode ->
              {
                benchmark = b.Suite.name;
                platform;
                mode;
                points =
                  Msc_comm.Scaling.run ~platform ~make_stencil:(make b)
                    ~configs:(configs ~platform ~mode);
              })
            [ `Strong; `Weak ])
        [ Msc_comm.Scaling.Sunway; Msc_comm.Scaling.Tianhe3 ])
    Suite.all

let render_fig10 () =
  let series = fig10 () in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "Figure 10: strong/weak scalability (achieved vs ideal GFlop/s)\n\n";
  List.iter
    (fun platform ->
      List.iter
        (fun mode ->
          let name =
            Printf.sprintf "%s %s scaling"
              (match platform with
              | Msc_comm.Scaling.Sunway -> "Sunway TaihuLight"
              | Msc_comm.Scaling.Tianhe3 -> "Tianhe-3 prototype")
              (match mode with `Strong -> "strong" | `Weak -> "weak")
          in
          Buffer.add_string buf (name ^ "\n");
          let rows =
            List.concat_map
              (fun s ->
                if s.platform = platform && s.mode = mode then
                  List.map
                    (fun (p : Msc_comm.Scaling.point) ->
                      [
                        s.benchmark;
                        string_of_int p.Msc_comm.Scaling.cores;
                        ints p.Msc_comm.Scaling.mpi_grid;
                        Table.fmt_float p.Msc_comm.Scaling.gflops;
                        Table.fmt_float p.Msc_comm.Scaling.ideal_gflops;
                        Table.fmt_float
                          (100.0 *. p.Msc_comm.Scaling.gflops
                          /. Float.max 1e-9 p.Msc_comm.Scaling.ideal_gflops)
                        ^ "%";
                      ])
                    s.points
                else [])
              series
          in
          Buffer.add_string buf
            (Table.render
               ~header:[ "Benchmark"; "Cores"; "MPI grid"; "GFlop/s"; "ideal"; "efficiency" ]
               rows);
          Buffer.add_char buf '\n')
        [ `Strong; `Weak ])
    [ Msc_comm.Scaling.Sunway; Msc_comm.Scaling.Tianhe3 ];
  (* Headline speedups at max scale, as reported in §5.3. *)
  let avg_speedup platform mode =
    let sps =
      List.filter_map
        (fun s ->
          if s.platform = platform && s.mode = mode then
            Some (Msc_comm.Scaling.speedup_vs_first s.points)
          else None)
        series
    in
    Stats.mean (Array.of_list sps)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "average speedup at max scale (8x cores): strong %.2fx | %.2fx (paper 6.74 | 5.85), weak %.2fx | %.2fx (paper 7.85 | 7.38)\n\n"
       (avg_speedup Msc_comm.Scaling.Sunway `Strong)
       (avg_speedup Msc_comm.Scaling.Tianhe3 `Strong)
       (avg_speedup Msc_comm.Scaling.Sunway `Weak)
       (avg_speedup Msc_comm.Scaling.Tianhe3 `Weak));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Figure 11 *)

let fig11_global = [| 8192; 128; 128 |]
let fig11_ranks = 128

let fig11_make_stencil dims =
  Suite.stencil ~dims (Suite.find "3d7pt_star")

let fig11 ?(seeds = [ 11; 23 ]) () =
  List.map
    (fun seed ->
      Msc_autotune.Autotune.tune ~seed ~make_stencil:fig11_make_stencil
        ~global:fig11_global ~nranks:fig11_ranks ())
    seeds

let render_fig11 () =
  let results = fig11 () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Figure 11: auto-tuning 3d7pt_star, 8192x128x128 on 128 Sunway CGs\n";
  List.iteri
    (fun i (r : Msc_autotune.Autotune.result) ->
      Buffer.add_string buf
        (Format.asprintf
           "run %d: initial %a = %s/step -> best %a = %s/step (%.2fx better, model R2 %.3f, %d SA iters)\n"
           (i + 1) Msc_autotune.Params.pp r.Msc_autotune.Autotune.initial
           (Msc_util.Units_fmt.seconds r.Msc_autotune.Autotune.initial_time_s)
           Msc_autotune.Params.pp r.Msc_autotune.Autotune.best
           (Msc_util.Units_fmt.seconds r.Msc_autotune.Autotune.best_time_s)
           r.Msc_autotune.Autotune.improvement r.Msc_autotune.Autotune.model_r2
           r.Msc_autotune.Autotune.iterations))
    results;
  let chart =
    Chart.line_chart ~title:"best predicted step time vs SA iteration"
      ~x_label:"iteration" ~y_label:"predicted time"
      (List.mapi
         (fun i (r : Msc_autotune.Autotune.result) ->
           ( Printf.sprintf "run %d" (i + 1),
             List.map
               (fun (it, e) -> (float_of_int it, e))
               r.Msc_autotune.Autotune.trace ))
         results)
  in
  Buffer.add_string buf chart;
  Buffer.add_string buf "(paper: optimum found by both runs; 3.28x improvement)\n\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Figures 12-14 *)

let fig12 () =
  List.map
    (fun b ->
      let st = Suite.stencil b in
      Msc_baselines.Halide_model.compare st (Settings.cpu_schedule b st))
    Suite.all

let render_fig12 () =
  let rows = fig12 () in
  let avg_aot =
    Stats.mean
      (Array.of_list
         (List.map (fun r -> r.Msc_baselines.Halide_model.speedup_aot_vs_jit) rows))
  in
  let avg_msc =
    Stats.mean
      (Array.of_list
         (List.map (fun r -> r.Msc_baselines.Halide_model.speedup_msc_vs_jit) rows))
  in
  Table.render
    ~title:"Figure 12: Halide-JIT (baseline) vs Halide-AOT vs MSC on the CPU platform"
    ~header:[ "Benchmark"; "JIT ms"; "AOT ms"; "MSC ms"; "AOT speedup"; "MSC speedup" ]
    (List.map
       (fun (r : Msc_baselines.Halide_model.comparison) ->
         [
           r.Msc_baselines.Halide_model.benchmark;
           Table.fmt_float (r.Msc_baselines.Halide_model.halide_jit_time_s *. 1e3);
           Table.fmt_float (r.Msc_baselines.Halide_model.halide_aot_time_s *. 1e3);
           Table.fmt_float (r.Msc_baselines.Halide_model.msc_time_s *. 1e3);
           Table.fmt_speedup r.Msc_baselines.Halide_model.speedup_aot_vs_jit;
           Table.fmt_speedup r.Msc_baselines.Halide_model.speedup_msc_vs_jit;
         ])
       rows)
  ^ Printf.sprintf "averages: Halide-AOT %.2fx, MSC %.2fx (paper: 2.92x, 3.33x)\n\n"
      avg_aot avg_msc

let fig13 () =
  List.map
    (fun b ->
      let st = Suite.stencil b in
      Msc_baselines.Patus_model.compare st (Settings.cpu_schedule b st))
    Suite.all

let render_fig13 () =
  let rows = fig13 () in
  let avg =
    Stats.mean
      (Array.of_list (List.map (fun r -> r.Msc_baselines.Patus_model.speedup) rows))
  in
  Table.render ~title:"Figure 13: MSC vs Patus (baseline) on the CPU platform"
    ~header:[ "Benchmark"; "Patus ms"; "MSC ms"; "Speedup" ]
    (List.map
       (fun (r : Msc_baselines.Patus_model.comparison) ->
         [
           r.Msc_baselines.Patus_model.benchmark;
           Table.fmt_float (r.Msc_baselines.Patus_model.patus_time_s *. 1e3);
           Table.fmt_float (r.Msc_baselines.Patus_model.msc_time_s *. 1e3);
           Table.fmt_speedup r.Msc_baselines.Patus_model.speedup;
         ])
       rows)
  ^ Printf.sprintf "average speedup: %.2fx (paper: 5.94x)\n\n" avg

let fig14 () =
  List.concat_map
    (fun b ->
      List.filter_map
        (fun (c : Settings.physis_config) ->
          if c.Settings.dim <> b.Suite.ndim then None
          else begin
            let config =
              {
                Msc_baselines.Physis_model.mpi_grid = c.Settings.mpi_grid;
                omp_threads = c.Settings.omp_threads;
                sub_grid = c.Settings.sub_grid;
              }
            in
            Some
              (Msc_baselines.Physis_model.compare
                 ~make_stencil:(fun dims -> Suite.stencil ~dims b)
                 ~global:c.Settings.global config)
          end)
        Settings.table8)
    Suite.all

let render_fig14 () =
  let rows = fig14 () in
  let avg =
    Stats.mean
      (Array.of_list (List.map (fun r -> r.Msc_baselines.Physis_model.speedup) rows))
  in
  Table.render
    ~title:"Figure 14: MSC vs Physis (baseline, 28 MPI ranks) on the CPU platform"
    ~header:[ "Benchmark"; "Config (MPIxOMP)"; "Physis ms"; "MSC ms"; "Speedup" ]
    (List.map
       (fun (r : Msc_baselines.Physis_model.comparison) ->
         let c = r.Msc_baselines.Physis_model.config in
         [
           r.Msc_baselines.Physis_model.benchmark;
           Printf.sprintf "(%s)x%d"
             (ints c.Msc_baselines.Physis_model.mpi_grid)
             c.Msc_baselines.Physis_model.omp_threads;
           Table.fmt_float (r.Msc_baselines.Physis_model.physis_time_s *. 1e3);
           Table.fmt_float (r.Msc_baselines.Physis_model.msc_time_s *. 1e3);
           Table.fmt_speedup r.Msc_baselines.Physis_model.speedup;
         ])
       rows)
  ^ Printf.sprintf "average speedup: %.2fx (paper: 9.88x)\n\n" avg

(* ------------------------------------------------------------------ *)
(* Correctness (§5.1) *)

type correctness_row = {
  benchmark : string;
  precision : Dtype.t;
  steps : int;
  interp_rel_error : float;
  codegen_rel_error : float option;
  tolerance : float;
  ok : bool;
}

let small_dims (b : Suite.bench) =
  match b.Suite.ndim with 2 -> [| 48; 48 |] | _ -> [| 20; 20; 20 |]

let correctness ?(quick = true) () =
  let steps = 4 in
  let cc_available = Msc_codegen.Codegen.Toolchain.available () in
  List.concat_map
    (fun b ->
      let dims = if quick then small_dims b else Suite.default_dims b in
      List.map
        (fun precision ->
          let st = Suite.stencil ~dtype:precision ~dims b in
          let kernel = Suite.kernel_of st in
          let tile =
            Array.mapi (fun d t -> min t dims.(d)) (Schedule.default_tile kernel)
          in
          let sched = Schedule.cpu_canonical ~tile ~threads:4 kernel in
          let report = Msc_exec.Verify.check ~schedule:sched ~steps st in
          let codegen_rel_error =
            if not cc_available then None
            else begin
              let rt = Msc_exec.Runtime.create st in
              Msc_exec.Runtime.run rt steps;
              let expected = Msc_exec.Grid.checksum (Msc_exec.Runtime.current rt) in
              let files =
                Msc_codegen.Codegen.generate ~steps st sched Msc_codegen.Codegen.Cpu
              in
              let dir =
                Filename.concat (Filename.get_temp_dir_name ())
                  (Printf.sprintf "msc_correctness_%s_%s" b.Suite.name
                     (Dtype.to_string precision))
              in
              match
                Msc_codegen.Codegen.Toolchain.compile_and_run ~steps ~dir files
              with
              | Ok r ->
                  Some
                    (Float.abs (r.Msc_codegen.Codegen.Toolchain.checksum -. expected)
                    /. Float.max 1.0 (Float.abs expected))
              | Error _ -> None
            end
          in
          let tolerance = Dtype.tolerance precision in
          let ok =
            report.Msc_exec.Verify.ok
            && match codegen_rel_error with None -> true | Some e -> e <= tolerance
          in
          {
            benchmark = b.Suite.name;
            precision;
            steps;
            interp_rel_error = report.Msc_exec.Verify.max_rel_error;
            codegen_rel_error;
            tolerance;
            ok;
          })
        [ Dtype.F64; Dtype.F32 ])
    Suite.all

let render_correctness () =
  Table.render
    ~title:
      "Correctness (§5.1): optimized runtime vs naive reference, and compiled\n\
       generated C vs interpreter (relative errors; thresholds 1e-10 fp64 / 1e-5 fp32)"
    ~header:[ "Benchmark"; "Precision"; "interp err"; "codegen err"; "tol"; "status" ]
    (List.map
       (fun r ->
         [
           r.benchmark;
           Dtype.to_string r.precision;
           Printf.sprintf "%.2g" r.interp_rel_error;
           (match r.codegen_rel_error with
           | Some e -> Printf.sprintf "%.2g" e
           | None -> "n/a");
           Printf.sprintf "%.0e" r.tolerance;
           (if r.ok then "OK" else "FAIL");
         ])
       (correctness ()))
  ^ "\n"

let render_all () =
  String.concat "\n"
    [
      render_table1 ();
      render_table4 ();
      render_table5 ();
      render_correctness ();
      render_fig7 ();
      render_fig8 ();
      render_fig9 ();
      render_table6 ();
      render_table7 ();
      render_fig10 ();
      render_fig11 ();
      render_table8 ();
      render_fig12 ();
      render_fig13 ();
      render_fig14 ();
    ]
