lib/benchsuite/settings.mli: Msc_ir Msc_schedule Suite
