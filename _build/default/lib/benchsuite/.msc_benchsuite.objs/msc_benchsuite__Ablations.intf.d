lib/benchsuite/ablations.mli:
