lib/benchsuite/settings.ml: Array List Msc_schedule Suite
