lib/benchsuite/experiments.mli: Msc_autotune Msc_baselines Msc_comm Msc_ir Msc_machine Msc_matrix Msc_sunway Suite
