lib/benchsuite/suite.ml: Array Builder Dtype Kernel List Msc_frontend Msc_ir Shapes Stencil String Tensor
