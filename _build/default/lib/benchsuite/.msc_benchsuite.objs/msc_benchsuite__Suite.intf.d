lib/benchsuite/suite.mli: Msc_frontend Msc_ir
