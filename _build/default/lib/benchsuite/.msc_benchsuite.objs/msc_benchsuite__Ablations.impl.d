lib/benchsuite/ablations.ml: Array Buffer List Msc_comm Msc_frontend Msc_ir Msc_matrix Msc_schedule Msc_sunway Msc_util Option Printf Settings String Suite
