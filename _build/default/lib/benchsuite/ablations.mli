(** Ablation studies for the design choices DESIGN.md calls out: tile-size
    selection, the double-buffered streaming extension (§5.6), the halo
    exchange direction set, and the inspector-executor load balancer. *)

type streaming_row = {
  benchmark : string;
  baseline_ms : float;
  streamed_ms : float option;  (** [None] when 2x buffers overflow the SPM *)
  speedup : float option;
}

val streaming : unit -> streaming_row list
(** Double-buffered tile streaming on the Sunway simulator, per benchmark. *)

type tile_row = {
  tile : int array;
  time_ms : float;
  gflops : float;
  spm_utilization : float;
  dma_descriptors : int;
}

val tile_sweep : ?bench_name:string -> unit -> tile_row list
(** Sunway step time across tile shapes for one benchmark (default
    3d7pt_star): exposes the descriptor-amortisation vs SPM-pressure
    trade-off behind Table 5's choices. *)

type imbalance_row = {
  skew : float;  (** cost ratio between the heaviest and lightest slab *)
  even_imbalance : float;
  inspected_imbalance : float;
}

val load_balance : ?ranks:int -> ?slabs:int -> unit -> imbalance_row list
(** Inspector-executor ablation: even blocks vs the DP partition over
    increasingly skewed synthetic cost profiles (the POP2/WRF §5.6 case). *)

type trace_row = {
  label : string;
  untiled_miss : float;
  tiled_miss : float;
}

val cache_trace : unit -> trace_row list
(** Trace-driven validation of the tiling premise: the measured LRU miss
    rate of a tiled sweep vs the untiled row-major sweep, on a reduced grid
    with a proportionally reduced cache. *)

val exchange_directions : unit -> (string * int * int) list
(** Per benchmark: messages per step for faces-only vs all-directions
    exchange on a 4x4(x4) process grid — the cost of corner support. *)

val render_all : unit -> string
