(** Experiment parameter settings: Table 5 (single-processor tiles), Table 7
    (scalability configurations) and Table 8 (Physis-comparison configs). *)

type table5_row = {
  benchmarks : string list;
  grid : int array;
  paper_sunway_tile : int array;  (** as printed in the paper *)
  sunway_tile : int array;
      (** tile actually used here: shrunk where the paper's tile cannot hold
          the two time-window read buffers in the 64 KB SPM *)
  matrix_tile : int array;
  reorder : string list;
}

val table5 : table5_row list

val sunway_tile : Suite.bench -> int array
val matrix_tile : Suite.bench -> int array

val sunway_schedule : Suite.bench -> Msc_ir.Stencil.t -> Msc_schedule.Schedule.t
(** The Listing-2 canonical schedule with the bench's Table 5 tile. *)

val matrix_schedule : Suite.bench -> Msc_ir.Stencil.t -> Msc_schedule.Schedule.t
val cpu_schedule : Suite.bench -> Msc_ir.Stencil.t -> Msc_schedule.Schedule.t

(** {1 Table 7: strong/weak scalability configurations} *)

type scaling_config = {
  dim : int;  (** 2 or 3 *)
  weak_sub_grid : int array;  (** per-rank grid, weak scaling *)
  strong_sub_grid : int array;  (** per-rank grid, strong scaling *)
  sunway_mpi_grid : int array;
  tianhe3_mpi_grid : int array;
}

val table7 : scaling_config list
(** Four scale points per dimensionality, exactly the paper's rows. *)

(** {1 Table 8: Physis-comparison configurations} *)

type physis_config = {
  dim : int;
  global : int array;
  sub_grid : int array;
  mpi_grid : int array;
  mpi_processes : int;
  omp_threads : int;
}

val table8 : physis_config list
