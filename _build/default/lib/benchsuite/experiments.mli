(** Drivers that regenerate every table and figure of the paper's evaluation
    (§5). Each [figN]/[tableN] returns structured data for tests; each
    [render_*] produces the printable artifact. *)

module Dtype := Msc_ir.Dtype

(** {1 Table 4: benchmark characteristics} *)

type table4_row = {
  bench : Suite.bench;
  read_bytes : int;
  write_bytes : int;
  ops : int;
  paper_ops : int;
}

val table4 : unit -> table4_row list
val render_table4 : unit -> string

(** {1 Figure 7: MSC vs OpenACC on one Sunway CG} *)

type fig7_row = {
  benchmark : string;
  msc : Msc_sunway.Sim.report;
  openacc : Msc_sunway.Sim.report;
  speedup : float;
}

val fig7 : precision:Dtype.t -> fig7_row list
val fig7_average : precision:Dtype.t -> float
val render_fig7 : unit -> string

(** {1 Figure 8: MSC vs hand-tuned OpenMP on Matrix} *)

type fig8_row = {
  benchmark : string;
  msc : Msc_matrix.Sim.report;
  openmp : Msc_matrix.Sim.report;
  speedup : float;  (** MSC performance relative to OpenMP (1.0 = parity) *)
}

val fig8 : precision:Dtype.t -> fig8_row list
val render_fig8 : unit -> string

(** {1 Figure 9: roofline} *)

val fig9_sunway : unit -> Msc_machine.Roofline.point list
val fig9_matrix : unit -> Msc_machine.Roofline.point list
val render_fig9 : unit -> string

(** {1 Tables 5/7/8 and Table 1} *)

val render_table1 : unit -> string
val render_table5 : unit -> string
val render_table7 : unit -> string
val render_table8 : unit -> string

(** {1 Table 6: LoC} *)

val table6 : unit -> Msc_baselines.Loc.row list
val render_table6 : unit -> string

(** {1 Figure 10: scalability} *)

type fig10_series = {
  benchmark : string;
  platform : Msc_comm.Scaling.platform;
  mode : [ `Strong | `Weak ];
  points : Msc_comm.Scaling.point list;
}

val fig10 : unit -> fig10_series list
val render_fig10 : unit -> string

(** {1 Figure 11: auto-tuning} *)

val fig11 : ?seeds:int list -> unit -> Msc_autotune.Autotune.result list
val render_fig11 : unit -> string

(** {1 Figures 12-14: CPU-platform DSL comparison} *)

val fig12 : unit -> Msc_baselines.Halide_model.comparison list
val render_fig12 : unit -> string

val fig13 : unit -> Msc_baselines.Patus_model.comparison list
val render_fig13 : unit -> string

val fig14 : unit -> Msc_baselines.Physis_model.comparison list
val render_fig14 : unit -> string

(** {1 §5.1 correctness methodology} *)

type correctness_row = {
  benchmark : string;
  precision : Dtype.t;
  steps : int;
  interp_rel_error : float;  (** optimized runtime vs naive reference *)
  codegen_rel_error : float option;
      (** compiled generated C vs interpreter ([None] if no C compiler) *)
  tolerance : float;
  ok : bool;
}

val correctness : ?quick:bool -> unit -> correctness_row list
(** [quick] (default true) uses reduced grids so real computation stays
    fast; the shapes and schedules are the real ones. *)

val render_correctness : unit -> string

val render_all : unit -> string
(** Every artifact in paper order. *)
