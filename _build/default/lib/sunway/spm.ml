type t = {
  capacity_bytes : int;
  mutable allocs : (string * int) list;  (* reverse insertion order *)
}

let default_capacity = 64 * 1024

let create ?(capacity_bytes = default_capacity) () =
  if capacity_bytes <= 0 then invalid_arg "Spm.create: capacity must be positive";
  { capacity_bytes; allocs = [] }

let capacity t = t.capacity_bytes
let used t = List.fold_left (fun acc (_, b) -> acc + b) 0 t.allocs
let utilization t = float_of_int (used t) /. float_of_int t.capacity_bytes

let alloc t ~name ~bytes =
  if bytes < 0 then invalid_arg "Spm.alloc: negative size";
  if List.mem_assoc name t.allocs then
    Error (Printf.sprintf "SPM buffer %s already allocated" name)
  else if used t + bytes > t.capacity_bytes then
    Error
      (Printf.sprintf "SPM overflow: %s needs %d B but only %d of %d B remain" name
         bytes
         (t.capacity_bytes - used t)
         t.capacity_bytes)
  else begin
    t.allocs <- (name, bytes) :: t.allocs;
    Ok ()
  end

let free t ~name = t.allocs <- List.filter (fun (n, _) -> not (String.equal n name)) t.allocs
let allocations t = List.rev t.allocs
let reset t = t.allocs <- []
