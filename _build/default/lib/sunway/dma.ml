type engine = {
  descriptor_latency_s : float;
  bandwidth_gbs : float;
  concurrent_engines : int;
}

type transfer = { bytes : float; descriptors : int }

let of_machine (m : Msc_machine.Machine.t) =
  {
    descriptor_latency_s = m.Msc_machine.Machine.dma_descriptor_latency_s;
    bandwidth_gbs = m.Msc_machine.Machine.mem_bandwidth_gbs;
    concurrent_engines = m.Msc_machine.Machine.compute_units;
  }

let no_transfer = { bytes = 0.0; descriptors = 0 }

let combine a b = { bytes = a.bytes +. b.bytes; descriptors = a.descriptors + b.descriptors }

let scale t f =
  {
    bytes = t.bytes *. f;
    descriptors = int_of_float (Float.ceil (float_of_int t.descriptors *. f));
  }

let time e t =
  (t.bytes /. (e.bandwidth_gbs *. 1e9))
  +. (float_of_int t.descriptors *. e.descriptor_latency_s
     /. float_of_int (max 1 e.concurrent_engines))

let effective_bandwidth_gbs e t =
  let s = time e t in
  if s <= 0.0 then e.bandwidth_gbs else t.bytes /. s /. 1e9
