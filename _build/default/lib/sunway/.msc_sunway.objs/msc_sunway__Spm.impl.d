lib/sunway/spm.ml: List Printf String
