lib/sunway/dma.ml: Float Msc_machine
