lib/sunway/dma.mli: Msc_machine
