lib/sunway/sim.ml: Array Dma Dtype Float Format Kernel List Msc_ir Msc_machine Msc_schedule Printf Spm Stencil Tensor
