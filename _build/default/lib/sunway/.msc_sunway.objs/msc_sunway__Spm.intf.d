lib/sunway/spm.mli:
