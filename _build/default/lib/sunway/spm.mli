(** Scratchpad-memory allocator for one CPE (64 KB, no cache; §2.2).

    The Sunway backend sizes its [cache_read]/[cache_write] buffers through
    this allocator, which enforces the capacity constraint the paper's
    schedules must respect. *)

type t

val create : ?capacity_bytes:int -> unit -> t
(** Default capacity: 64 KiB. *)

val capacity : t -> int
val used : t -> int
val utilization : t -> float

val alloc : t -> name:string -> bytes:int -> (unit, string) result
(** Fails when the remaining capacity is insufficient or the name is taken. *)

val free : t -> name:string -> unit
(** No-op if the name is unknown. *)

val allocations : t -> (string * int) list
(** Live allocations, insertion order. *)

val reset : t -> unit
