(** DMA cost engine for CPE <-> main-memory transfers.

    Each transfer is a set of descriptors (one per contiguous row); a
    descriptor pays a fixed setup/completion latency and the payload moves at
    the shared core-group bandwidth. Descriptor latencies across the 64 CPEs
    overlap; payload bandwidth does not. *)

type engine = {
  descriptor_latency_s : float;
  bandwidth_gbs : float;  (** aggregate attainable CG bandwidth *)
  concurrent_engines : int;  (** CPEs issuing in parallel *)
}

type transfer = { bytes : float; descriptors : int }

val of_machine : Msc_machine.Machine.t -> engine

val no_transfer : transfer
val combine : transfer -> transfer -> transfer
val scale : transfer -> float -> transfer
(** Multiply both fields (descriptor count rounded up). *)

val time : engine -> transfer -> float
(** Aggregate wall time: [bytes / bandwidth + descriptors * latency /
    engines]. *)

val effective_bandwidth_gbs : engine -> transfer -> float
(** Payload bytes over {!time} — degrades as rows shorten. *)
