(** The optimization primitives of §4.3.

    A schedule is the ordered trace of primitive applications to a kernel:
    [tile] (loop fission), [reorder], [parallel], and the caching primitives
    [cache_read] / [cache_write] / [compute_at] that manage scratchpad
    buffers and DMA on cache-less processors such as Sunway.

    Axis naming convention: spatial dimensions are named [x, y, z, ...] in
    declaration order (dimension 0 = [x]; the last dimension is contiguous in
    memory). [tile] splits axis [a] into [ao] (outer) and [ai] (inner). The
    paper's canonical 3-D schedule is then
    [reorder (xo, yo, zo, xi, yi, zi); parallel (xo, 64)]. *)

type par_kind =
  | Omp_threads  (** homogeneous many-core: OpenMP multi-threading *)
  | Athread_cpes  (** heterogeneous many-core: athread task-to-CPE mapping *)

type buffer_scope =
  | Scope_global  (** allocated once, outside all loops (Listing 2 "global") *)
  | Scope_tile  (** allocated per tile *)

type primitive =
  | Tile of int array  (** fission factor per dimension *)
  | Reorder of string list  (** full permutation of the split axis names *)
  | Parallel of { axis : string; units : int; kind : par_kind }
  | Cache_read of { tensor : string; buffer : string; scope : buffer_scope }
  | Cache_write of { buffer : string; scope : buffer_scope }
  | Compute_at of { buffer : string; axis : string }

type t = { primitives : primitive list }

val empty : t
(** No transformation: the untiled, serial loop nest. *)

val tile : t -> int array -> t
val reorder : t -> string list -> t
val parallel : ?kind:par_kind -> t -> string -> int -> t
val cache_read : ?scope:buffer_scope -> t -> tensor:string -> buffer:string -> t
val cache_write : ?scope:buffer_scope -> t -> buffer:string -> t
val compute_at : t -> buffer:string -> axis:string -> t

val dim_names : int -> string list
(** [\["x"\]], [\["x";"y"\]], [\["x";"y";"z"\]], then [x0..xn]. *)

val tile_sizes : t -> ndim:int -> int array option
(** Resolved tile sizes if a [Tile] primitive is present. *)

val order : t -> ndim:int -> string list
(** Final loop order (after tiling and any reorder), outermost first. For an
    untiled schedule this is just the dimension names. *)

val parallel_spec : t -> (string * int * par_kind) option
val cache_read_spec : t -> (string * string * buffer_scope) option
val cache_write_spec : t -> (string * buffer_scope) option
val compute_at_specs : t -> (string * string) list

val validate : t -> kernel:Msc_ir.Kernel.t -> (unit, string) result
(** Structural legality: tile rank and positivity, reorder is a permutation
    of the current axis names, parallel/compute_at axes exist, compute_at
    buffers were declared by a caching primitive, tile sizes do not exceed
    extents. *)

val sunway_canonical :
  ?tile:int array -> ?cpes:int -> Msc_ir.Kernel.t -> t
(** The Listing-2 schedule: tile + reorder (all outer then all inner) +
    cache_read/cache_write in SPM + compute_at the innermost outer axis +
    athread parallelisation of the outermost axis over [cpes] (default 64). *)

val matrix_canonical : ?tile:int array -> ?threads:int -> Msc_ir.Kernel.t -> t
(** Tile + reorder + OpenMP parallel over the outermost axis (default 32
    threads, one Matrix supernode). *)

val cpu_canonical : ?tile:int array -> ?threads:int -> Msc_ir.Kernel.t -> t
(** Same structure as {!matrix_canonical}; default 28 threads (the paper's
    E5-2680v4 pair). *)

val default_tile : Msc_ir.Kernel.t -> int array
(** A Table-5-style heuristic tile: small outer dimensions, long contiguous
    innermost dimension, shrunk for wide halos. *)

val to_msc_lines : t -> kernel_name:string -> string list
(** Listing-2-style DSL source lines for the primitives (LoC accounting). *)

val pp : Format.formatter -> t -> unit
