lib/schedule/loopnest.mli: Format Msc_ir Schedule
