lib/schedule/schedule.mli: Format Msc_ir
