lib/schedule/loopnest.ml: Array Axis Dtype Format Kernel List Msc_ir Option Printf Schedule String Tensor
