lib/schedule/schedule.ml: Array Format Kernel List Msc_ir Printf String Tensor
