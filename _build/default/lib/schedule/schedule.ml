open Msc_ir

type par_kind = Omp_threads | Athread_cpes
type buffer_scope = Scope_global | Scope_tile

type primitive =
  | Tile of int array
  | Reorder of string list
  | Parallel of { axis : string; units : int; kind : par_kind }
  | Cache_read of { tensor : string; buffer : string; scope : buffer_scope }
  | Cache_write of { buffer : string; scope : buffer_scope }
  | Compute_at of { buffer : string; axis : string }

type t = { primitives : primitive list }

let empty = { primitives = [] }
let add t p = { primitives = t.primitives @ [ p ] }

let tile t sizes = add t (Tile (Array.copy sizes))
let reorder t axes = add t (Reorder axes)
let parallel ?(kind = Omp_threads) t axis units = add t (Parallel { axis; units; kind })

let cache_read ?(scope = Scope_global) t ~tensor ~buffer =
  add t (Cache_read { tensor; buffer; scope })

let cache_write ?(scope = Scope_global) t ~buffer = add t (Cache_write { buffer; scope })
let compute_at t ~buffer ~axis = add t (Compute_at { buffer; axis })

let dim_names ndim =
  if ndim <= 3 then List.filteri (fun i _ -> i < ndim) [ "x"; "y"; "z" ]
  else List.init ndim (Printf.sprintf "x%d")

let tile_sizes t ~ndim =
  List.fold_left
    (fun acc p ->
      match p with
      | Tile sizes when Array.length sizes = ndim -> Some (Array.copy sizes)
      | Tile _ | Reorder _ | Parallel _ | Cache_read _ | Cache_write _ | Compute_at _
        ->
          acc)
    None t.primitives

let split_axis_names ndim =
  let names = dim_names ndim in
  List.map (fun n -> n ^ "o") names @ List.map (fun n -> n ^ "i") names

let order t ~ndim =
  let base =
    match tile_sizes t ~ndim with
    | None -> dim_names ndim
    | Some _ -> split_axis_names ndim
  in
  List.fold_left
    (fun acc p ->
      match p with
      | Reorder axes when List.sort compare axes = List.sort compare acc -> axes
      | Reorder _ | Tile _ | Parallel _ | Cache_read _ | Cache_write _ | Compute_at _
        ->
          acc)
    base t.primitives

let parallel_spec t =
  List.fold_left
    (fun acc p ->
      match p with
      | Parallel { axis; units; kind } -> Some (axis, units, kind)
      | Tile _ | Reorder _ | Cache_read _ | Cache_write _ | Compute_at _ -> acc)
    None t.primitives

let cache_read_spec t =
  List.fold_left
    (fun acc p ->
      match p with
      | Cache_read { tensor; buffer; scope } -> Some (tensor, buffer, scope)
      | Tile _ | Reorder _ | Parallel _ | Cache_write _ | Compute_at _ -> acc)
    None t.primitives

let cache_write_spec t =
  List.fold_left
    (fun acc p ->
      match p with
      | Cache_write { buffer; scope } -> Some (buffer, scope)
      | Tile _ | Reorder _ | Parallel _ | Cache_read _ | Compute_at _ -> acc)
    None t.primitives

let compute_at_specs t =
  List.filter_map
    (function
      | Compute_at { buffer; axis } -> Some (buffer, axis)
      | Tile _ | Reorder _ | Parallel _ | Cache_read _ | Cache_write _ -> None)
    t.primitives

let validate t ~kernel =
  let ndim = Kernel.ndim kernel in
  let shape = kernel.Kernel.input.Tensor.shape in
  let buffers = ref [] in
  let axes = ref (dim_names ndim) in
  let check_axis ctx axis =
    if List.mem axis !axes then Ok ()
    else
      Error
        (Printf.sprintf "%s: unknown axis %s (have: %s)" ctx axis
           (String.concat "," !axes))
  in
  let rec go = function
    | [] -> Ok ()
    | p :: rest -> (
        let step =
          match p with
          | Tile sizes ->
              if Array.length sizes <> ndim then
                Error
                  (Printf.sprintf "tile: %d sizes for a %d-D kernel"
                     (Array.length sizes) ndim)
              else begin
                let bad = ref None in
                Array.iteri
                  (fun d s ->
                    if s < 1 then bad := Some (Printf.sprintf "tile: size %d on dim %d" s d)
                    else if s > shape.(d) then
                      bad :=
                        Some
                          (Printf.sprintf "tile: size %d exceeds extent %d on dim %d" s
                             shape.(d) d))
                  sizes;
                match !bad with
                | Some msg -> Error msg
                | None ->
                    axes := split_axis_names ndim;
                    Ok ()
              end
          | Reorder names ->
              if List.sort compare names <> List.sort compare !axes then
                Error
                  (Printf.sprintf "reorder: %s is not a permutation of %s"
                     (String.concat "," names)
                     (String.concat "," !axes))
              else begin
                (* Each outer split axis must precede its inner partner. *)
                let pos name =
                  let rec find k = function
                    | [] -> -1
                    | n :: rest -> if String.equal n name then k else find (k + 1) rest
                  in
                  find 0 names
                in
                let violation =
                  List.find_opt
                    (fun base ->
                      let po = pos (base ^ "o") and pi = pos (base ^ "i") in
                      po >= 0 && pi >= 0 && po > pi)
                    (dim_names ndim)
                in
                match violation with
                | Some base ->
                    Error
                      (Printf.sprintf "reorder: %si must come after %so" base base)
                | None -> Ok ()
              end
          | Parallel { axis; units; _ } ->
              if units < 1 then Error "parallel: unit count must be >= 1"
              else check_axis "parallel" axis
          | Cache_read { tensor; buffer; _ } ->
              if not (String.equal tensor kernel.Kernel.input.Tensor.name) then
                Error
                  (Printf.sprintf "cache_read: tensor %s is not the kernel input %s"
                     tensor kernel.Kernel.input.Tensor.name)
              else begin
                buffers := buffer :: !buffers;
                Ok ()
              end
          | Cache_write { buffer; _ } ->
              buffers := buffer :: !buffers;
              Ok ()
          | Compute_at { buffer; axis } ->
              if not (List.mem buffer !buffers) then
                Error (Printf.sprintf "compute_at: undeclared buffer %s" buffer)
              else check_axis "compute_at" axis
        in
        match step with Error _ as e -> e | Ok () -> go rest)
  in
  go t.primitives

let default_tile kernel =
  let shape = kernel.Kernel.input.Tensor.shape in
  let radius = Kernel.radius kernel in
  let rmax = Array.fold_left max 1 radius in
  match shape with
  | [| _; n |] ->
      (* 2-D: Table 5 uses (32,64) for low order, (16,32) for high order. *)
      if rmax <= 2 then [| 32; min 64 n |] else [| 16; min 32 n |]
  | [| _; _; p |] ->
      (* 3-D: (2,8,64) for low order, (2,4,32) for high order. *)
      if rmax <= 2 then [| 2; 8; min 64 p |] else [| 2; 4; min 32 p |]
  | _ -> Array.map (fun n -> min n 32) shape

let canonical_order ndim =
  let names = dim_names ndim in
  List.map (fun n -> n ^ "o") names @ List.map (fun n -> n ^ "i") names

let tiled_base ?tile:tile_arg kernel =
  let sizes = match tile_arg with Some s -> s | None -> default_tile kernel in
  let t = tile empty sizes in
  reorder t (canonical_order (Kernel.ndim kernel))

let sunway_canonical ?tile:tile_arg ?(cpes = 64) kernel =
  let t = tiled_base ?tile:tile_arg kernel in
  let t = cache_read t ~tensor:kernel.Kernel.input.Tensor.name ~buffer:"buffer_read" in
  let t = cache_write t ~buffer:"buffer_write" in
  let ndim = Kernel.ndim kernel in
  let innermost_outer = List.nth (dim_names ndim) (ndim - 1) ^ "o" in
  let t = compute_at t ~buffer:"buffer_read" ~axis:innermost_outer in
  let t = compute_at t ~buffer:"buffer_write" ~axis:innermost_outer in
  parallel ~kind:Athread_cpes t "xo" cpes

let matrix_canonical ?tile:tile_arg ?(threads = 32) kernel =
  let t = tiled_base ?tile:tile_arg kernel in
  parallel ~kind:Omp_threads t "xo" threads

let cpu_canonical ?tile:tile_arg ?(threads = 28) kernel =
  matrix_canonical ?tile:tile_arg ~threads kernel

let scope_string = function Scope_global -> "global" | Scope_tile -> "tile"

let to_msc_lines t ~kernel_name =
  let lines = ref [] in
  let line fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  (match
     List.find_map (function Tile s -> Some s | _ -> None) t.primitives
   with
  | Some sizes ->
      let names = dim_names (Array.length sizes) in
      line "const int %s;"
        (String.concat ", "
           (List.mapi (fun d n -> Printf.sprintf "tile_size_%s = %d" n sizes.(d)) names));
      line "Axis %s;" (String.concat ", " (split_axis_names (List.length names)))
  | None -> ());
  List.iter
    (fun p ->
      match p with
      | Tile sizes ->
          let names = dim_names (Array.length sizes) in
          let taus = List.map (fun n -> "tile_size_" ^ n) names in
          let splits =
            List.concat_map (fun n -> [ n ^ "o"; n ^ "i" ]) names
          in
          line "%s.tile(%s);" kernel_name (String.concat ", " (taus @ splits))
      | Reorder axes -> line "%s.reorder(%s);" kernel_name (String.concat ", " axes)
      | Parallel { axis; units; _ } -> line "%s.parallel(%s, %d);" kernel_name axis units
      | Cache_read { tensor; buffer; scope } ->
          line "CacheRead %s;" buffer;
          line "%s.cache_read(%s, %s, \"%s\");" kernel_name tensor buffer
            (scope_string scope)
      | Cache_write { buffer; scope } ->
          line "CacheWrite %s;" buffer;
          line "%s.cache_write(%s, \"%s\");" kernel_name buffer (scope_string scope)
      | Compute_at { buffer; axis } ->
          line "%s.compute_at(%s, %s);" kernel_name buffer axis)
    t.primitives;
  List.rev !lines

let pp_primitive ppf = function
  | Tile sizes ->
      Format.fprintf ppf "tile(%s)"
        (String.concat "," (Array.to_list (Array.map string_of_int sizes)))
  | Reorder axes -> Format.fprintf ppf "reorder(%s)" (String.concat "," axes)
  | Parallel { axis; units; kind } ->
      Format.fprintf ppf "parallel(%s,%d,%s)" axis units
        (match kind with Omp_threads -> "omp" | Athread_cpes -> "athread")
  | Cache_read { tensor; buffer; scope } ->
      Format.fprintf ppf "cache_read(%s,%s,%s)" tensor buffer (scope_string scope)
  | Cache_write { buffer; scope } ->
      Format.fprintf ppf "cache_write(%s,%s)" buffer (scope_string scope)
  | Compute_at { buffer; axis } -> Format.fprintf ppf "compute_at(%s,%s)" buffer axis

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_primitive)
    t.primitives
