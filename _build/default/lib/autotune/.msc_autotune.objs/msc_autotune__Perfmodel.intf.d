lib/autotune/perfmodel.mli: Msc_util Params
