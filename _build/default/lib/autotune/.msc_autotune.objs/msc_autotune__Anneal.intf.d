lib/autotune/anneal.mli: Msc_util
