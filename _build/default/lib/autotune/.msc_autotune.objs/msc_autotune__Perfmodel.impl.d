lib/autotune/perfmodel.ml: Array List Msc_util Params
