lib/autotune/anneal.ml: Float List Msc_util
