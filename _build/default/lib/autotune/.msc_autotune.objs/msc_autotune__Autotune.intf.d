lib/autotune/autotune.mli: Msc_ir Params
