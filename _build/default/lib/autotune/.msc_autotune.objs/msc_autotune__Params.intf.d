lib/autotune/params.mli: Format Msc_util
