lib/autotune/autotune.ml: Anneal Array Float List Msc_comm Msc_ir Msc_schedule Msc_sunway Msc_util Params Perfmodel
