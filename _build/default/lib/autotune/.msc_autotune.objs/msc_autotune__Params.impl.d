lib/autotune/params.ml: Array Format List Msc_util String
