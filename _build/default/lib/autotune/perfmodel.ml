type t = {
  model : Msc_util.Regress.model;
  global : int array;
}

let spm_bytes = 64 * 1024

let features (c : Params.config) ~global =
  let nd = Array.length global in
  let sub = Params.subgrid c ~global in
  let tile = Array.mapi (fun d t -> min t sub.(d)) c.tile in
  let tile_volume = Array.fold_left ( * ) 1 tile in
  let padded = Array.map (fun t -> t + 2) tile in
  let padded_volume = Array.fold_left ( * ) 1 padded in
  let sub_volume = Array.fold_left ( * ) 1 sub in
  let working_set = float_of_int ((padded_volume * 2) + tile_volume) *. 8.0 in
  let rows = padded_volume / padded.(nd - 1) in
  let surface =
    List.init nd (fun d -> sub_volume / sub.(d)) |> List.fold_left ( + ) 0
  in
  let nranks = Array.fold_left ( * ) 1 c.mpi_grid in
  let aspect =
    let mx = Array.fold_left max 1 c.mpi_grid
    and mn = Array.fold_left min max_int c.mpi_grid in
    float_of_int mx /. float_of_int (max 1 mn)
  in
  [|
    log (float_of_int tile_volume);
    working_set /. float_of_int spm_bytes;
    float_of_int padded_volume /. float_of_int (max 1 tile_volume);
    float_of_int rows /. float_of_int (max 1 tile_volume);
    float_of_int sub_volume /. 1e6;
    float_of_int surface /. float_of_int (max 1 sub_volume);
    float_of_int nranks /. 1e3;
    aspect;
  |]

let train ~rng ~global ~nranks ~true_cost ?(samples = 120) () =
  let nd = Array.length global in
  ignore nd;
  let configs =
    List.init samples (fun _ -> Params.random rng ~dims:global ~nranks)
  in
  let feats = Array.of_list (List.map (fun c -> features c ~global) configs) in
  (* Regress on log time: costs span orders of magnitude. *)
  let targets = Array.of_list (List.map (fun c -> log (true_cost c)) configs) in
  { model = Msc_util.Regress.fit ~features:feats ~targets; global }

let predict t c = exp (Msc_util.Regress.predict t.model (features c ~global:t.global))
let r_squared t = t.model.Msc_util.Regress.r_squared
