(** The auto-tuner's search space (§4.4 "Performance auto-tuning"): tile
    sizes per spatial dimension and the MPI process-grid shape. *)

type config = { tile : int array; mpi_grid : int array }

val tile_candidates : dims:int array -> int list array
(** Per-dimension candidate tile sizes: powers of two from 1 up to the
    extent (inclusive of the extent when it is not a power of two). *)

val mpi_grid_candidates : nranks:int -> ndim:int -> int array list
(** Every factorisation of [nranks] into [ndim] ordered factors. *)

val random : Msc_util.Prng.t -> dims:int array -> nranks:int -> config

val neighbor : Msc_util.Prng.t -> dims:int array -> nranks:int -> config -> config
(** One annealing move: nudge one tile dimension up/down the candidate list,
    or swap to an adjacent MPI factorisation. *)

val subgrid : config -> global:int array -> int array
(** Per-rank extents under the config's process grid (ceil division). *)

val equal : config -> config -> bool
val pp : Format.formatter -> config -> unit
