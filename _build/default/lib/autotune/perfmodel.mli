(** Analytical performance model: multivariable linear regression from
    schedule/decomposition features to per-step kernel time (§4.4).

    Features capture the terms the paper's model considers: MPI setup,
    kernel computation, packing/unpacking volume, and transfer volume. *)

type t

val features : Params.config -> global:int array -> float array
(** Feature vector: log tile volume, working-set-to-SPM ratio, halo overhead
    ratio, DMA descriptors per point, per-rank points, surface-to-volume
    ratio, rank count, max process-grid aspect ratio. *)

val train :
  rng:Msc_util.Prng.t ->
  global:int array ->
  nranks:int ->
  true_cost:(Params.config -> float) ->
  ?samples:int ->
  unit ->
  t
(** Fit the regression on randomly sampled configurations evaluated by
    [true_cost] (the processor + network simulators standing in for real
    measurements). *)

val predict : t -> Params.config -> float
val r_squared : t -> float
